"""Differential tests: instrumentation must be architecturally invisible.

Three contracts from the paper's design (Sections 3 and 9):

1. Running a workload under SASSI instrumentation with no-op handlers
   must leave every piece of architectural state identical to the
   uninstrumented run — the output arrays, all of global memory, and
   the original kernel's registers at EXIT.  The injected ABI sequence
   may only touch state it spills and restores.
2. The same must hold with register write-back enabled when the handler
   does not modify anything (the read-modify-writeback path must be a
   faithful round trip).
3. Campaign results must not depend on how they were scheduled: a study
   run serially and the same study run with ``jobs=4`` must render
   byte-identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.device as device_mod
from repro.backend import ptxas
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.abi import CALLER_SAVED
from repro.sim import Device
from repro.sim.executor import Executor
from repro.workloads import make

#: workloads exercised end to end (registry names); small datasets,
#: but together they cover loads/stores, atomics, branches, loops,
#: shared memory, barriers, and multi-launch drivers.
DIFFERENTIAL_WORKLOADS = [
    "rodinia/nn",
    "rodinia/hotspot",
    "rodinia/pathfinder",
    "rodinia/nw",
    "rodinia/lud",
    "rodinia/backprop",
    "parboil/sgemm(small)",
    "parboil/spmv(small)",
    "parboil/stencil",
]

#: every instruction instrumented before, every write instrumented after
HEAVY_FLAGS = ("-sassi-inst-before=all "
               "-sassi-before-args=mem-info,reg-info,cond-branch-info")
WRITEBACK_FLAGS = ("-sassi-inst-after=reg-writes,memory "
                   "-sassi-after-args=reg-info,mem-info "
                   "-sassi-writeback-regs")


class _SnapshotExecutor(Executor):
    """Executor that snapshots each warp's registers when it exits."""

    snapshots: list = []

    def _run_warp(self, warp, cta, counter):
        super()._run_warp(warp, cta, counter)
        if warp.done:
            type(self).snapshots.append(warp.regs.copy())


def _run_workload(name, flags=None):
    """One complete run; returns (output, global memory, exit regs)."""
    workload = make(name)
    device = Device()
    ir = workload.build_ir()
    if flags is None:
        kernel = ptxas(ir)
        num_regs = kernel.num_regs
    else:
        runtime = SassiRuntime(device, poison_caller_saved=False)
        spec = spec_from_flags(flags)
        if spec.before:
            runtime.register_before_handler(lambda ctx: None)
        if spec.after:
            runtime.register_after_handler(lambda ctx: None)
        kernel = runtime.compile(ir, spec)
        num_regs = ptxas(workload.build_ir()).num_regs
    _SnapshotExecutor.snapshots = []
    output = workload.execute(device, kernel)
    # compare the registers the ABI preserves across handler calls: the
    # stack pointer and every callee-saved register of the original
    # kernel's allocation.  Caller-saved registers are only spilled and
    # restored while *live* (Figure 2: "the compiler knows exactly which
    # registers to spill"), so a dead one may legitimately hold ABI
    # scratch at EXIT.
    preserved = [r for r in range(num_regs) if r not in CALLER_SAVED]
    regs = [snap[preserved] for snap in _SnapshotExecutor.snapshots]
    return output, device.global_mem.data.copy(), regs


@pytest.fixture(autouse=True)
def _snapshot_launches(monkeypatch):
    monkeypatch.setattr(device_mod, "Executor", _SnapshotExecutor)


@pytest.mark.parametrize("name", DIFFERENTIAL_WORKLOADS)
def test_noop_instrumentation_is_invisible(name):
    base_out, base_mem, base_regs = _run_workload(name)
    inst_out, inst_mem, inst_regs = _run_workload(name, HEAVY_FLAGS)
    assert base_out.dtype == inst_out.dtype
    assert np.array_equal(base_out, inst_out), \
        f"{name}: output differs under no-op instrumentation"
    assert np.array_equal(base_mem, inst_mem), \
        f"{name}: global memory differs under no-op instrumentation"
    assert len(base_regs) == len(inst_regs)
    for index, (base, inst) in enumerate(zip(base_regs, inst_regs)):
        assert np.array_equal(base, inst), \
            f"{name}: exit registers differ (warp exit #{index})"


@pytest.mark.parametrize("name", ["rodinia/nn", "parboil/sgemm(small)",
                                  "rodinia/pathfinder"])
def test_noop_writeback_is_invisible(name):
    base_out, base_mem, base_regs = _run_workload(name)
    inst_out, inst_mem, inst_regs = _run_workload(name, WRITEBACK_FLAGS)
    assert np.array_equal(base_out, inst_out)
    assert np.array_equal(base_mem, inst_mem)
    for base, inst in zip(base_regs, inst_regs):
        assert np.array_equal(base, inst)


def test_study_results_independent_of_jobs():
    from repro.studies import casestudy3

    names = ["rodinia/nn", "rodinia/pathfinder"]
    serial = casestudy3.main(names, jobs=1)
    parallel = casestudy3.main(names, jobs=4)
    assert serial == parallel


def test_injection_campaign_independent_of_jobs():
    from repro.studies import casestudy4

    serial = casestudy4.main(["rodinia/nn"], num_injections=6, jobs=1)
    parallel = casestudy4.main(["rodinia/nn"], num_injections=6, jobs=4)
    assert serial == parallel
