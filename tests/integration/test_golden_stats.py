"""Golden-stat regression tests.

Each snapshot in ``tests/golden/`` pins the merged
:class:`~repro.sim.executor.KernelStats` of one small workload's
uninstrumented run — instruction counts, opcode histogram, memory
transactions, cycles.  Any executor, coalescer, or cost-model change
that shifts these numbers fails here first, loudly, with a diff.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_stats.py \
        --update-golden
"""

from __future__ import annotations

import json
import os

import pytest

from repro.backend import ptxas
from repro.campaign.engine import merge_kernel_stats
from repro.sim import Device
from repro.workloads import make

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

GOLDEN_WORKLOADS = [
    "rodinia/nn",
    "rodinia/hotspot",
    "rodinia/pathfinder",
    "parboil/sgemm(small)",
    "parboil/spmv(small)",
]


def _slug(name: str) -> str:
    return (name.replace("/", "_").replace("(", "_")
            .replace(")", "").lower())


def _snapshot(name: str) -> dict:
    workload = make(name)
    device = Device()
    workload.execute(device, ptxas(workload.build_ir()))
    trace = workload.last_trace
    merged = merge_kernel_stats(trace.launches)
    return {
        "workload": name,
        "kernel_launches": trace.kernel_launches,
        "warp_instructions": merged.warp_instructions,
        "thread_instructions": merged.thread_instructions,
        "opcode_counts": {op.name: count for op, count in
                          sorted(merged.opcode_counts.items(),
                                 key=lambda item: item[0].name)},
        "global_mem_instructions": merged.global_mem_instructions,
        "global_transactions": merged.global_transactions,
        "barriers": merged.barriers,
        "cycles": merged.cycles,
        "max_stack_depth": merged.max_stack_depth,
    }


@pytest.mark.parametrize("name", GOLDEN_WORKLOADS)
def test_golden_stats(name, update_golden):
    path = os.path.join(GOLDEN_DIR, f"{_slug(name)}.json")
    current = _snapshot(name)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip(f"golden snapshot rewritten: {path}")
    assert os.path.exists(path), \
        f"missing golden snapshot {path}; run with --update-golden"
    with open(path) as handle:
        golden = json.load(handle)
    assert current == golden, (
        f"{name}: executor statistics drifted from the golden snapshot; "
        f"if intentional, re-bless with --update-golden")
