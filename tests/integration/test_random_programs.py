"""Differential testing of the whole stack: random structured programs
are built with the KernelBuilder, compiled through the backend, executed
on the simulator, and compared against a host Python interpreter of the
same program — with and without SASSI instrumentation.

This exercises the interactions hardest to unit-test: divergence-stack
mechanics for arbitrary nests of ifs/loops/breaks, register allocation
under pressure, and instrumentation transparency at every site class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import ptxas
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sim import Device, Dim3

# ---------------------------------------------------------------------
# A tiny program AST: statements mutate an accumulator per thread.
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class OpStmt:
    op: str          # add / sub / mul / xor
    operand: str     # "tid" / "acc" / literal int (as str)


@dataclass(frozen=True)
class IfStmt:
    cmp: str         # lt / ge / eq
    threshold: int   # compared against (acc & 0xff)
    body: Tuple
    orelse: Tuple


@dataclass(frozen=True)
class LoopStmt:
    trips: int           # 1..4 static, or -1 for data-dependent (tid & 3)
    break_when: int      # break when loop index equals this (or -1)
    body: Tuple


Stmt = Union[OpStmt, IfStmt, LoopStmt]

_ops = st.sampled_from(["add", "sub", "mul", "xor"])
_operands = st.one_of(st.just("tid"), st.just("acc"),
                      st.integers(-7, 7).map(str))
_op_stmts = st.builds(OpStmt, _ops, _operands)


def _stmts(depth: int):
    if depth == 0:
        return st.lists(_op_stmts, min_size=1, max_size=3).map(tuple)
    sub = _stmts(depth - 1)
    if_stmts = st.builds(IfStmt, st.sampled_from(["lt", "ge", "eq"]),
                         st.integers(0, 255), sub,
                         st.one_of(st.just(()), sub))
    loop_stmts = st.builds(LoopStmt,
                           st.sampled_from([1, 2, 3, -1]),
                           st.sampled_from([-1, -1, 0, 1]),
                           sub)
    return st.lists(st.one_of(_op_stmts, if_stmts, loop_stmts),
                    min_size=1, max_size=3).map(tuple)


programs = _stmts(2)

# ---------------------------------------------------------------------
# Host interpreter
# ---------------------------------------------------------------------


def _mask32(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - (1 << 32) if x & (1 << 31) else x


def interpret(program: Tuple, tid: int) -> int:
    acc = tid

    def value_of(token: str) -> int:
        if token == "tid":
            return tid
        if token == "acc":
            return acc
        return int(token)

    def run_block(block: Tuple) -> bool:
        """Returns True if a break escaped this block."""
        nonlocal acc
        for stmt in block:
            if isinstance(stmt, OpStmt):
                operand = value_of(stmt.operand)
                if stmt.op == "add":
                    acc = _mask32(acc + operand)
                elif stmt.op == "sub":
                    acc = _mask32(acc - operand)
                elif stmt.op == "mul":
                    acc = _mask32(acc * operand)
                else:
                    acc = _mask32(acc ^ operand)
            elif isinstance(stmt, IfStmt):
                low = acc & 0xFF
                taken = {"lt": low < stmt.threshold,
                         "ge": low >= stmt.threshold,
                         "eq": low == stmt.threshold}[stmt.cmp]
                if run_block(stmt.body if taken else stmt.orelse):
                    return True
            else:
                trips = stmt.trips if stmt.trips >= 0 else (tid & 3)
                for k in range(trips):
                    if k == stmt.break_when:
                        break
                    if run_block(stmt.body):
                        break
        return False

    run_block(program)
    return acc


# ---------------------------------------------------------------------
# Kernel generator
# ---------------------------------------------------------------------


def build_ir(program: Tuple):
    b = KernelBuilder("randprog", [("out", PTR)])
    tid = b.cvt(b.global_index_x(), Type.S32)
    acc = b.var(tid, Type.S32)

    def value_of(token: str):
        return tid if token == "tid" else acc if token == "acc" \
            else int(token)

    def emit_block(block: Tuple) -> None:
        for stmt in block:
            if isinstance(stmt, OpStmt):
                operand = value_of(stmt.operand)
                emit = {"add": b.add, "sub": b.sub, "mul": b.mul,
                        "xor": b.xor}[stmt.op]
                b.assign(acc, emit(acc, operand))
            elif isinstance(stmt, IfStmt):
                cond = {"lt": b.lt, "ge": b.ge, "eq": b.eq}[stmt.cmp](
                    b.and_(acc, 0xFF), stmt.threshold)
                branch = b.if_(cond)
                with branch:
                    emit_block(stmt.body)
                if stmt.orelse:
                    with branch.else_():
                        emit_block(stmt.orelse)
            else:
                trips = stmt.trips if stmt.trips >= 0 \
                    else b.cvt(b.and_(b.cvt(tid, Type.U32), 3), Type.S32)
                with b.for_range(0, trips) as k:
                    if stmt.break_when >= 0:
                        with b.if_(b.eq(k, stmt.break_when)):
                            b.break_()
                    emit_block(stmt.body)

    emit_block(program)
    b.store(b.gep(b.param("out"), b.global_index_x(), 4), acc)
    return b.finish()


def run_on_device(kernel, n=64) -> np.ndarray:
    device = Device()
    out = device.alloc(n * 4)
    device.launch(kernel, Dim3(2), Dim3(32), [out])
    return device.read_array(out, n, np.int32)


@settings(max_examples=40, deadline=None)
@given(programs)
def test_random_program_matches_interpreter(program):
    kernel = ptxas(build_ir(program))
    got = run_on_device(kernel)
    expected = np.array([interpret(program, t) for t in range(64)],
                        dtype=np.int64)
    expected = (expected & 0xFFFFFFFF).astype(np.uint32).view(np.int32)
    assert (got == expected).all()


@settings(max_examples=15, deadline=None)
@given(programs)
def test_random_program_unchanged_under_instrumentation(program):
    device = Device()
    runtime = SassiRuntime(device)   # with caller-saved poisoning
    runtime.register_before_handler(lambda ctx: None)
    runtime.register_after_handler(lambda ctx: None)
    spec = spec_from_flags(
        "-sassi-inst-before=all -sassi-inst-after=reg-writes "
        "-sassi-before-args=mem-info,cond-branch-info "
        "-sassi-after-args=reg-info")
    kernel = runtime.compile(build_ir(program), spec)
    out = device.alloc(64 * 4)
    device.launch(kernel, Dim3(2), Dim3(32), [out])
    got = device.read_array(out, 64, np.int32)
    expected = np.array([interpret(program, t) for t in range(64)],
                        dtype=np.int64)
    expected = (expected & 0xFFFFFFFF).astype(np.uint32).view(np.int32)
    assert (got == expected).all()
