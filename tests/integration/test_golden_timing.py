"""Golden timing-report snapshots.

Each snapshot in ``tests/golden/`` pins the full rendered output of
``repro trace summary`` and ``repro trace iters`` — under both issue
policies — for one workload's instrumented run.  The text embeds every
number the timing model produces (cycles, busy/bubble split, per-reason
stalls, hotspot ranking, bubble regions, divergence spans), so any
scheduler, latency-table, or segmentation change that moves a single
cycle fails here first, with a line diff.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_timing.py \
        --update-golden
"""

from __future__ import annotations

import difflib
import os

import pytest

from repro.trace.timing import live_timing, render_iters, render_summary

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

GOLDEN_WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "parboil/sgemm(small)",
]


def _slug(name: str) -> str:
    return (name.replace("/", "_").replace("(", "_")
            .replace(")", "").lower())


def _snapshot(name: str) -> str:
    model, verified = live_timing(name)
    assert verified, f"{name}: instrumented run failed verification"
    sections = []
    for policy in ("gto", "lrr"):
        report = model.schedule(policy)
        sections.append(render_summary(report))
        sections.append(render_iters(report))
    return "\n\n".join(sections) + "\n"


@pytest.mark.parametrize("name", GOLDEN_WORKLOADS)
def test_golden_timing(name, update_golden):
    path = os.path.join(GOLDEN_DIR, f"timing_{_slug(name)}.txt")
    current = _snapshot(name)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(current)
        pytest.skip(f"golden snapshot rewritten: {path}")
    assert os.path.exists(path), \
        f"missing golden snapshot {path}; run with --update-golden"
    with open(path) as handle:
        golden = handle.read()
    if current != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), current.splitlines(),
            fromfile="golden", tofile="current", lineterm=""))
        pytest.fail(
            f"{name}: timing report drifted from the golden snapshot; "
            f"if intentional, re-bless with --update-golden\n{diff}")
