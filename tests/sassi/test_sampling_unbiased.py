"""Statistical differential suite: sampled instrumentation must be a
faithful (rate 1/1) or unbiased-estimating (rate 1/N) stand-in for the
exact instrumented path.

For each stock handler × workload:

* **rate 1/1** — an installed controller with ``EveryNth(1)`` and with
  ``PerWarp(1)`` must be *bit-identical* to the exact instrumented run:
  workload outputs, handler results, ``KernelStats``, telemetry
  counters, and captured trace bytes.
* **rate 1/4 and 1/16** — deterministic every-Nth sampling must produce
  scaled estimates that match the exact counters within a fixed
  tolerance; seeded per-warp sampling is proven unbiased via its
  *full-rate limit*: the N hash-residue phases partition the warps, so
  the mean of the N phase estimates must equal the exact count
  **identically** (integer equality, no tolerance at all).  A single
  fixed-seed per-warp spot check with a generous tolerance runs on the
  many-warp workload only — one selected warp out of two dominates any
  single-seed estimate on tiny grids, which is variance, not bias.

  Everything here is deterministic — the workloads, ``EveryNth``, and
  the splitmix64-seeded ``PerWarp`` with seeds derived from one fixed
  ``SeedSequence`` — so the assertions can never flake: the observed
  relative errors are constants.

The exact run per (handler, workload) is computed once and memoized.
"""

from __future__ import annotations

import filecmp

import numpy as np
import pytest

from repro.handlers.branch_profiler import BranchProfiler
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.handlers.memtrace import MemoryTracer
from repro.handlers.opcode_histogram import OpcodeHistogram
from repro.handlers.value_profiler import ValueProfiler
from repro.sassi.runtime import AdaptiveController, EveryNth, PerWarp
from repro.sim import Device
from repro.telemetry.collector import TELEMETRY
from repro.workloads import make

WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "parboil/sgemm(small)",
]

HANDLERS = ["branch_profiler", "memory_divergence", "opcode_histogram",
            "value_profiler", "memtrace"]

#: one fixed SeedSequence derives every per-warp seed in the suite
_SEEDS = np.random.SeedSequence(20260808).generate_state(16)


def _seed_for(handler: str, name: str, n: int) -> int:
    index = (HANDLERS.index(handler) * len(WORKLOADS)
             + WORKLOADS.index(name) + n) % len(_SEEDS)
    return int(_SEEDS[index])


#: (mode, n) -> max allowed relative error of the aggregate estimates.
#: Deterministic runs: these bound *fixed* observed errors with margin.
TOLERANCE = {
    ("nth", 4): 0.30,
    ("nth", 16): 0.40,
    ("warp", 4): 0.55,
    ("warp", 16): 0.80,
}

#: the many-warp workload used for the single-seed per-warp spot check
MANY_WARPS = "rodinia/nn"


def _make_profiler(handler, device, trace_path=None):
    if handler == "branch_profiler":
        return BranchProfiler(device)
    if handler == "memory_divergence":
        return MemoryDivergenceProfiler(device)
    if handler == "opcode_histogram":
        return OpcodeHistogram(device)
    if handler == "value_profiler":
        return ValueProfiler(device)
    return MemoryTracer(device, path=trace_path)


def _collect(handler, profiler):
    if handler == "branch_profiler":
        return profiler.branches()
    if handler == "memory_divergence":
        return profiler.matrix().tolist()
    if handler == "opcode_histogram":
        return profiler.totals()
    if handler == "value_profiler":
        return profiler.profiles()
    return list(profiler.records())


def _estimates(handler, profiler) -> dict:
    """Scalar additive counters (already scaled by the handlers)."""
    if handler == "branch_profiler":
        branches = profiler.branches()
        return {"total": sum(b.total for b in branches),
                "active": sum(b.active_threads for b in branches)}
    if handler == "memory_divergence":
        return {"accesses": int(profiler.matrix().sum())}
    if handler == "opcode_histogram":
        return {k: v for k, v in profiler.totals().items() if v}
    if handler == "value_profiler":
        return {"weight": sum(p.weight for p in profiler.profiles())}
    return {"events": profiler.weighted_events}


def _run(name, handler, controller=None, trace_path=None):
    workload = make(name)
    device = Device()
    if controller is not None:
        controller.install(device)
    profiler = _make_profiler(handler, device, trace_path=trace_path)
    stats_list = []
    device.on_kernel_exit(lambda _d, _k, stats: stats_list.append(stats))
    TELEMETRY.enable(reset=True)
    try:
        kernel = profiler.compile(workload.build_ir())
        output = workload.execute(device, kernel)
        counters = dict(TELEMETRY.counters)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    return {
        "output": output,
        "result": _collect(handler, profiler),
        "stats": stats_list,
        "counters": counters,
        "estimates": _estimates(handler, profiler),
        "profiler": profiler,
    }


_EXACT_CACHE: dict = {}


def _exact(name, handler, tmp_path_factory):
    key = (name, handler)
    cached = _EXACT_CACHE.get(key)
    if cached is None:
        trace_path = None
        if handler == "memtrace":
            base = tmp_path_factory.mktemp("exact")
            trace_path = str(base / "exact.rptrace")
        cached = _run(name, handler, trace_path=trace_path)
        cached["trace_path"] = trace_path
        _EXACT_CACHE[key] = cached
    return cached


# ------------------------------------------------------------ rate 1/1

@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("handler", HANDLERS)
@pytest.mark.parametrize("mode", ["nth", "warp"])
def test_rate_one_is_bit_identical(name, handler, mode, tmp_path,
                                   tmp_path_factory):
    exact = _exact(name, handler, tmp_path_factory)
    if mode == "nth":
        sampling = EveryNth(1)
    else:
        sampling = PerWarp(1, seed=_seed_for(handler, name, 1))
    controller = AdaptiveController(sampling=sampling)
    trace_path = str(tmp_path / "sampled.rptrace") \
        if handler == "memtrace" else None
    sampled = _run(name, handler, controller=controller,
                   trace_path=trace_path)
    assert np.array_equal(exact["output"], sampled["output"]), \
        f"{name}/{handler}: outputs differ at rate 1/1 ({mode})"
    assert exact["result"] == sampled["result"], \
        f"{name}/{handler}: handler results differ at rate 1/1 ({mode})"
    assert exact["stats"] == sampled["stats"], \
        f"{name}/{handler}: KernelStats differ at rate 1/1 ({mode})"
    assert exact["counters"] == sampled["counters"], \
        f"{name}/{handler}: telemetry differs at rate 1/1 ({mode})"
    assert "sassi.sampled_skipped" not in sampled["counters"]
    if handler == "memtrace":
        assert filecmp.cmp(exact["trace_path"], trace_path,
                           shallow=False), \
            f"{name}: trace bytes differ at rate 1/1 ({mode})"


# ---------------------------------------------------------- rate 1/N

@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("handler", HANDLERS)
@pytest.mark.parametrize("n", [4, 16])
def test_every_nth_estimates_match_exact(name, handler, n, tmp_path,
                                         tmp_path_factory):
    exact = _exact(name, handler, tmp_path_factory)
    controller = AdaptiveController(sampling=EveryNth(n))
    trace_path = str(tmp_path / "sampled.rptrace") \
        if handler == "memtrace" else None
    sampled = _run(name, handler, controller=controller,
                   trace_path=trace_path)

    # sampling may never perturb the application itself
    assert np.array_equal(exact["output"], sampled["output"]), \
        f"{name}/{handler}: workload output differs under 1/{n} sampling"

    tolerance = TOLERANCE[("nth", n)]
    for counter, exact_value in exact["estimates"].items():
        estimate = sampled["estimates"].get(counter, 0)
        error = abs(estimate - exact_value) / max(exact_value, 1)
        assert error <= tolerance, \
            f"{name}/{handler}/{counter}: 1/{n} nth estimate " \
            f"{estimate} vs exact {exact_value} " \
            f"(rel err {error:.3f} > {tolerance})"

    # skipped firings are accounted, not lost
    assert sampled["counters"].get("sassi.sampled_skipped", 0) > 0


@pytest.mark.parametrize("handler", HANDLERS)
@pytest.mark.parametrize("n", [4, 16])
def test_per_warp_single_seed_spot_check(handler, n, tmp_path,
                                         tmp_path_factory):
    """Single fixed-seed per-warp estimate on the many-warp workload:
    within a generous (but deterministic) tolerance."""
    name = MANY_WARPS
    exact = _exact(name, handler, tmp_path_factory)
    sampling = PerWarp(n, seed=_seed_for(handler, name, n))
    controller = AdaptiveController(sampling=sampling)
    trace_path = str(tmp_path / "sampled.rptrace") \
        if handler == "memtrace" else None
    sampled = _run(name, handler, controller=controller,
                   trace_path=trace_path)
    assert np.array_equal(exact["output"], sampled["output"])
    tolerance = TOLERANCE[("warp", n)]
    for counter, exact_value in exact["estimates"].items():
        estimate = sampled["estimates"].get(counter, 0)
        error = abs(estimate - exact_value) / max(exact_value, 1)
        assert error <= tolerance, \
            f"{name}/{handler}/{counter}: 1/{n} warp estimate " \
            f"{estimate} vs exact {exact_value} " \
            f"(rel err {error:.3f} > {tolerance})"


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("handler", HANDLERS)
def test_per_warp_full_rate_limit_quarter(name, handler, tmp_path,
                                          tmp_path_factory):
    """Unbiasedness proper: the 4 hash-residue phases of ``PerWarp(4)``
    partition the warps, so the phase-averaged scaled estimates equal
    the exact counters *identically* — integer equality, every handler,
    every workload."""
    _assert_full_rate_limit(name, handler, 4, tmp_path, tmp_path_factory)


@pytest.mark.parametrize("name", WORKLOADS)
def test_per_warp_full_rate_limit_sixteenth(name, tmp_path,
                                            tmp_path_factory):
    """Same identity at 1/16 (opcode_histogram only: 16 runs each)."""
    _assert_full_rate_limit(name, "opcode_histogram", 16, tmp_path,
                            tmp_path_factory)


def _assert_full_rate_limit(name, handler, n, tmp_path, tmp_path_factory):
    exact = _exact(name, handler, tmp_path_factory)
    seed = _seed_for(handler, name, n)
    summed: dict = {}
    for phase in range(n):
        controller = AdaptiveController(
            sampling=PerWarp(n, seed=seed, phase=phase))
        trace_path = str(tmp_path / f"phase{phase}.rptrace") \
            if handler == "memtrace" else None
        sampled = _run(name, handler, controller=controller,
                       trace_path=trace_path)
        for counter, value in sampled["estimates"].items():
            summed[counter] = summed.get(counter, 0) + value
    for counter, exact_value in exact["estimates"].items():
        assert summed.get(counter, 0) == n * exact_value, \
            f"{name}/{handler}/{counter}: phase-averaged 1/{n} per-warp " \
            f"estimate {summed.get(counter, 0) / n} != exact {exact_value}"


@pytest.mark.parametrize("name", WORKLOADS)
def test_value_profiler_masks_are_consistent(name, tmp_path_factory):
    """AND-accumulated constant-bit masks are not additive; sampling
    sees a subset of the writes, so its masks must be supersets of the
    exact ones (never contradict them)."""
    exact = _exact(name, "value_profiler", tmp_path_factory)
    controller = AdaptiveController(sampling=EveryNth(4))
    sampled = _run(name, "value_profiler", controller=controller)
    exact_by_addr = {p.address: p for p in exact["result"]}
    for profile in sampled["result"]:
        reference = exact_by_addr.get(profile.address)
        if reference is None:
            continue
        for dst, (reg, ones, zeros, _scalar) in enumerate(profile.dsts):
            ref_reg, ref_ones, ref_zeros, _ = reference.dsts[dst]
            assert reg == ref_reg
            assert ones & ref_ones == ref_ones, \
                f"{name}: sampled constantOnes dropped exact-constant bits"
            assert zeros & ref_zeros == ref_zeros, \
                f"{name}: sampled constantZeros dropped exact-constant bits"


@pytest.mark.parametrize("name", WORKLOADS)
def test_skipped_plus_executed_equals_full_rate(name, tmp_path_factory):
    """The attribution invariant: executed ``sassi.*`` instructions plus
    ``sassi.sampled_skipped`` must equal the full-rate run's ``sassi.*``
    total exactly (deterministic sampling)."""
    exact = _exact(name, "opcode_histogram", tmp_path_factory)
    controller = AdaptiveController(sampling=EveryNth(4))
    sampled = _run(name, "opcode_histogram", controller=controller)

    def sassi_total(counters, with_skipped):
        total = sum(value for key, value in counters.items()
                    if key.startswith("sassi.")
                    and key != "sassi.sampled_skipped")
        if with_skipped:
            total += counters.get("sassi.sampled_skipped", 0)
        return total

    assert sassi_total(sampled["counters"], with_skipped=True) \
        == sassi_total(exact["counters"], with_skipped=False)
