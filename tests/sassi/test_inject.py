"""Tests for the injection pass: the Figure 2 golden sequence, semantic
preservation under instrumentation (with caller-saved poisoning), site
selection, and the spill-skipping ablation."""

import numpy as np
import pytest

from repro.backend import CompileOptions, ptxas
from repro.isa.instruction import Imm, MemRef
from repro.isa.opcodes import Opcode
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ir import Space
from repro.kernelir.types import PTR
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.inject import InjectionReport, instrument_kernel
from repro.sassi.spec import InstClass, InstrumentationSpec, What
from repro.sim import Device, Dim3

from tests.conftest import (
    build_divergent_sum,
    build_vecadd,
    divergent_sum_reference,
    run_vecadd,
)


def noop_handler(ctx):
    pass


def compile_instrumented(device, kernel_ir, flags, handler=noop_handler,
                         after=None):
    runtime = SassiRuntime(device)
    runtime.register_before_handler(handler)
    runtime.register_after_handler(after or noop_handler)
    spec = spec_from_flags(flags)
    return runtime.compile(kernel_ir, spec), runtime


class TestFigure2Sequence:
    """The paper's Figure 2: instrumenting a predicated global store
    before=memory with mem-info.  The kernel is hand-written SASS with
    the same shape as the paper's example (a ``@P0 ST`` with live R0,
    R10, R11)."""

    def build(self):
        from repro.isa import parse_kernel

        source = """
.kernel vadd
        MOV R10, c[0x0][0x148] ;
        MOV R11, c[0x0][0x14c] ;
        MOV R0, c[0x0][0x140] ;
        ISETP.LT.U32.AND P0, PT, R0, c[0x0][0x150], PT ;
        @P0 STG [R10], R0 ;
        EXIT ;
"""
        kernel = parse_kernel(source)
        spec = spec_from_flags(
            "-sassi-inst-before=memory -sassi-before-args=mem-info")
        instrumented = instrument_kernel(
            kernel, spec, lambda name: 0x7F000000, fn_addr=0x1000)
        instrumented.validate()
        return instrumented

    def injected_run(self, kernel):
        """The injected instructions around the (only) STG."""
        store_at = next(i for i, ins in enumerate(kernel.instructions)
                        if ins.opcode is Opcode.STG)
        start = store_at
        while start and kernel.instructions[start - 1].tag == "sassi":
            start -= 1
        return kernel.instructions[start:store_at], store_at

    def test_frame_is_0x80_as_in_the_paper(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        alloc = seq[0]
        assert alloc.opcode is Opcode.IADD
        assert alloc.srcs[1] == Imm(-0x80)
        assert kernel.frame_bytes == 0x80

    def test_sequence_steps_in_figure_order(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        ops = [i.opcode for i in seq]
        # step 2: predicate spill via P2R + STL
        p2r = ops.index(Opcode.P2R)
        assert ops[p2r + 1] is Opcode.STL
        # step 7: the call
        jcal = ops.index(Opcode.JCAL)
        # step 8 is after the call: restores
        r2p = ops.index(Opcode.R2P)
        assert p2r < jcal < r2p

    def test_spills_use_register_numbered_slots(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        from repro.sassi.params import BP_GPR_SPILL

        for instr in seq:
            if instr.opcode is Opcode.STL and isinstance(
                    instr.srcs[1], type(instr.srcs[1])):
                ref = instr.mem_ref
                data = instr.srcs[1]
                if hasattr(data, "index") \
                        and ref.offset >= BP_GPR_SPILL \
                        and ref.offset < BP_GPR_SPILL + 64 \
                        and (ref.offset - BP_GPR_SPILL) % 4 == 0 \
                        and instr.mods == ():
                    slot = (ref.offset - BP_GPR_SPILL) // 4
                    if slot < 16 and data.index < 16:
                        assert slot == data.index

    def test_pointer_setup_matches_abi(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        lops = [i for i in seq if i.opcode is Opcode.LOP]
        # bp pointer in R4, extra params pointer in R6
        dsts = {i.dsts[0].index for i in lops}
        assert {4, 6} <= dsts

    def test_wide_store_of_address_pair(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        wide_stores = [i for i in seq if i.opcode is Opcode.STL
                       and "64" in i.mods]
        assert len(wide_stores) == 1  # mp.address

    def test_original_store_unmodified(self):
        kernel = self.build()
        _, store_at = self.injected_run(kernel)
        store = kernel.instructions[store_at]
        assert store.tag is None
        assert not store.guard.is_unconditional  # still predicated

    def test_guarded_will_execute_pair(self):
        # the @P0 IADD R4, RZ, 0x1 / @!P0 IADD R4, RZ, 0x0 idiom
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        guarded = [i for i in seq if i.opcode is Opcode.IADD
                   and not i.guard.is_unconditional]
        assert len(guarded) == 2
        assert {i.srcs[1].value for i in guarded} == {0, 1}
        assert guarded[0].guard.negated != guarded[1].guard.negated

    def test_live_registers_spilled(self):
        # R0, R10, R11 are live across the site, exactly as in Figure 2
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        from repro.sassi.params import BP_GPR_SPILL

        spilled_regs = {(i.mem_ref.offset - BP_GPR_SPILL) // 4
                        for i in seq if i.opcode is Opcode.STL
                        and not i.mods
                        and BP_GPR_SPILL <= i.mem_ref.offset < 0x58}
        assert {0, 10, 11} <= spilled_regs

    def test_restores_mirror_spills(self):
        kernel = self.build()
        seq, _ = self.injected_run(kernel)
        from repro.sassi.params import BP_GPR_SPILL

        spilled = {i.mem_ref.offset for i in seq
                   if i.opcode is Opcode.STL and not i.mods
                   and BP_GPR_SPILL <= i.mem_ref.offset < 0x58}
        filled = {i.mem_ref.offset for i in seq
                  if i.opcode is Opcode.LDL
                  and BP_GPR_SPILL <= i.mem_ref.offset < 0x58}
        assert spilled == filled


class TestSemanticPreservation:
    """Instrumented kernels must compute identical results even though
    the trampoline poisons every caller-saved register after each call."""

    @pytest.mark.parametrize("flags", [
        "-sassi-inst-before=memory -sassi-before-args=mem-info",
        "-sassi-inst-before=branches -sassi-before-args=cond-branch-info",
        "-sassi-inst-before=all "
        "-sassi-before-args=mem-info,cond-branch-info",
        "-sassi-inst-after=reg-writes -sassi-after-args=reg-info",
        "-sassi-inst-before=all -sassi-inst-after=reg-writes "
        "-sassi-after-args=reg-info,mem-info",
    ])
    def test_vecadd_unchanged(self, flags):
        device = Device()
        kernel, _ = compile_instrumented(device, build_vecadd(), flags)
        a, b, out, stats = run_vecadd(device, kernel, n=200, block=64)
        assert np.allclose(out, a + b)
        assert stats.handler_calls > 0
        assert stats.sassi_warp_instructions > 0

    def test_divergent_kernel_unchanged(self):
        device = Device()
        kernel, _ = compile_instrumented(
            device, build_divergent_sum(),
            "-sassi-inst-before=all "
            "-sassi-before-args=mem-info,cond-branch-info")
        n = 200
        out_ptr = device.alloc(n * 4)
        device.launch(kernel, Dim3(1), Dim3(256), [n, out_ptr])
        out = device.read_array(out_ptr, n, np.int32)
        assert (out == divergent_sum_reference(n)).all()

    def test_shared_memory_kernel_unchanged(self):
        device = Device()
        b = KernelBuilder("rev", [("data", PTR)])
        smem = b.shared_array(64 * 4)
        tid = b.tid_x()
        b.store(b.shared_ptr(smem, tid, 4),
                b.load_u32(b.gep(b.param("data"), tid, 4)),
                space=Space.SHARED)
        b.barrier()
        got = b.load_u32(b.shared_ptr(smem, b.sub(63, tid), 4),
                         space=Space.SHARED)
        b.store(b.gep(b.param("data"), tid, 4), got)
        kernel, _ = compile_instrumented(
            device, b.finish(),
            "-sassi-inst-before=memory -sassi-before-args=mem-info")
        data = np.arange(64, dtype=np.uint32)
        ptr = device.alloc_array(data)
        device.launch(kernel, Dim3(1), Dim3(64), [ptr])
        assert (device.read_array(ptr, 64, np.uint32) == data[::-1]).all()


class TestSiteSelection:
    def test_memory_only_instruments_memory_ops(self):
        device = Device()
        kernel, runtime = compile_instrumented(
            device, build_vecadd(),
            "-sassi-inst-before=memory -sassi-before-args=mem-info")
        report = runtime.reports[0]
        baseline = ptxas(build_vecadd())
        memory_ops = sum(1 for i in baseline.instructions if i.is_memory)
        assert report.before_sites == memory_ops

    def test_all_instruments_everything_once(self):
        device = Device()
        kernel, runtime = compile_instrumented(
            device, build_vecadd(), "-sassi-inst-before=all")
        report = runtime.reports[0]
        baseline = ptxas(build_vecadd())
        assert report.before_sites == len(baseline.instructions)

    def test_injected_code_not_reinstrumented(self):
        device = Device()
        kernel, _ = compile_instrumented(
            device, build_vecadd(), "-sassi-inst-before=all")
        jcal_count = sum(1 for i in kernel.instructions
                         if i.opcode is Opcode.JCAL)
        baseline = ptxas(build_vecadd())
        assert jcal_count == len(baseline.instructions)

    def test_labels_point_at_instrumentation(self):
        # jumping to a label must execute the target's instrumentation
        device = Device()
        kernel, _ = compile_instrumented(
            device, build_divergent_sum(), "-sassi-inst-before=all")
        for name, index in kernel.labels.items():
            if index < len(kernel.instructions):
                pass  # validated by execution tests; structural check:
        kernel.validate()


class TestSkipRedundantSpills:
    def test_ablation_reduces_spills(self):
        device = Device()
        runtime = SassiRuntime(device)
        runtime.register_before_handler(noop_handler)
        base_spec = spec_from_flags("-sassi-inst-before=all")
        opt_spec = spec_from_flags(
            "-sassi-inst-before=all -sassi-skip-redundant-spills")

        baseline = runtime.compile(build_vecadd(), base_spec)
        base_report = runtime.reports[-1]
        optimized = runtime.compile(build_vecadd(), opt_spec)
        opt_report = runtime.reports[-1]
        assert opt_report.spills_skipped > 0
        assert len(optimized.instructions) < len(baseline.instructions)

    def test_ablation_preserves_results(self):
        device = Device()
        runtime = SassiRuntime(device)
        runtime.register_before_handler(noop_handler)
        spec = spec_from_flags(
            "-sassi-inst-before=all -sassi-skip-redundant-spills")
        kernel = runtime.compile(build_vecadd(), spec)
        a, b, out, _ = run_vecadd(device, kernel, n=100, block=64)
        assert np.allclose(out, a + b)


class TestRegisterCap:
    def test_fat_handler_rejected(self):
        from repro.sassi.handlers import HandlerRegistrationError

        device = Device()
        runtime = SassiRuntime(device)
        runtime.register_before_handler(noop_handler, registers=64)
        with pytest.raises(HandlerRegistrationError):
            runtime.instrument(spec_from_flags("-sassi-inst-before=all"))

    def test_sixteen_register_handler_accepted(self):
        device = Device()
        runtime = SassiRuntime(device)
        runtime.register_before_handler(noop_handler, registers=16)
        runtime.instrument(spec_from_flags("-sassi-inst-before=all"))
