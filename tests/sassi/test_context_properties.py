"""Hypothesis property suite for the warp-wide context intrinsics.

The vectorized ``ballot``/``any_``/``all_``/``shfl`` implementations in
:class:`~repro.sassi.handlers.SASSIContext` must bit-match a per-lane
reference loop on arbitrary masks and values — and the context's own
scalar mode (``vectorized=False``) must agree with both, since it is
the baseline the instrumented differential suite diffs against.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sassi.handlers import SASSIContext

WARP = 32

mask_bits = st.integers(min_value=0, max_value=2**WARP - 1)
lane_values = st.lists(st.integers(0, 2**32 - 1),
                       min_size=WARP, max_size=WARP)


class _StubExecutor:
    device = None


def _contexts(bits):
    mask = np.array([(bits >> lane) & 1 == 1 for lane in range(WARP)],
                    dtype=bool)
    fast = SASSIContext(_StubExecutor(), None, None, mask, bp=None)
    slow = SASSIContext(_StubExecutor(), None, None, mask, bp=None,
                        vectorized=False)
    return mask, fast, slow


def _ref_ballot(mask, values):
    result = 0
    for lane in range(WARP):
        if mask[lane] and values[lane]:
            result |= 1 << lane
    return result


@settings(max_examples=200, deadline=None)
@given(bits=mask_bits, raw=lane_values)
def test_ballot_matches_reference_loop(bits, raw):
    mask, fast, slow = _contexts(bits)
    values = np.asarray(raw, dtype=np.uint32)
    expected = _ref_ballot(mask, values)
    assert fast.ballot(values) == expected
    assert slow.ballot(values) == expected


@settings(max_examples=100, deadline=None)
@given(bits=mask_bits, truthy=st.booleans())
def test_ballot_scalar_argument(bits, truthy):
    mask, fast, slow = _contexts(bits)
    expected = _ref_ballot(mask, np.full(WARP, int(truthy)))
    assert fast.ballot(int(truthy)) == expected
    assert slow.ballot(int(truthy)) == expected


@settings(max_examples=100, deadline=None)
@given(bits=mask_bits)
def test_active_mask_matches_mask_bits(bits):
    _, fast, slow = _contexts(bits)
    assert fast.active_mask() == bits
    assert slow.active_mask() == bits


@settings(max_examples=200, deadline=None)
@given(bits=mask_bits, raw=lane_values)
def test_any_all_match_reference_loop(bits, raw):
    mask, fast, slow = _contexts(bits)
    values = np.asarray(raw, dtype=np.uint32)
    active = [lane for lane in range(WARP) if mask[lane]]
    ref_any = any(bool(values[lane]) for lane in active)
    ref_all = all(bool(values[lane]) for lane in active)
    assert fast.any_(values) == ref_any
    assert slow.any_(values) == ref_any
    assert fast.all_(values) == ref_all
    assert slow.all_(values) == ref_all


@settings(max_examples=200, deadline=None)
@given(bits=mask_bits, raw=lane_values,
       src_lane=st.integers(0, WARP - 1))
def test_shfl_reads_source_lane(bits, raw, src_lane):
    _, fast, slow = _contexts(bits)
    values = np.asarray(raw, dtype=np.uint32)
    assert int(fast.shfl(values, src_lane)) == raw[src_lane]
    assert int(slow.shfl(values, src_lane)) == raw[src_lane]


@settings(max_examples=100, deadline=None)
@given(bits=mask_bits)
def test_leader_and_lanes_match_reference(bits):
    mask, fast, slow = _contexts(bits)
    active = [lane for lane in range(WARP) if mask[lane]]
    expected_leader = active[0] if active else -1
    for ctx in (fast, slow):
        assert ctx.leader() == expected_leader
        assert ctx.lanes() == active
        assert ctx.num_active == len(active)
