"""Property tests for the runtime active-site mask.

Three layers, from pure algebra to full-system invisibility:

1. **Mask algebra** (hypothesis, pure): ``ActiveSiteMask`` is a value —
   ``enable(disable(S))`` round-trips, ``disable`` is commutative,
   associative-by-union, and idempotent, and equality/hash follow the
   disabled set alone.
2. **Gating commutes with plan fusion** (hypothesis over stub plans,
   plus a real fused workload): the controller gates by the *stable*
   site id baked into the fused plan's ``bp.id`` constant, so disabling
   a set of sites removes exactly those sites' firings from a fused run
   — the per-site counts of a toggled run are the full run's counts
   restricted to the enabled sites, whatever the fusion layout did.
3. **Toggled-off sites are invisible** (the PR 1 no-op-invisibility
   machinery): an instrumented run with every site disabled leaves the
   workload output, all of global memory, and the original kernel's
   preserved registers at EXIT bit-identical to the uninstrumented run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.device as device_mod
from repro.backend import ptxas
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.abi import CALLER_SAVED
from repro.sassi.runtime import (
    ALL_SITES,
    ActiveSiteMask,
    AdaptiveController,
    DEFAULT_RESPEC_FLAGS,
    SiteCountProfiler,
)
from repro.sim import Device
from repro.sim.executor import Executor
from repro.workloads import make

site_ids = st.sets(st.integers(min_value=0, max_value=255), max_size=24)


# ----------------------------------------------------------- algebra

@settings(max_examples=200, deadline=None)
@given(a=site_ids, b=site_ids)
def test_enable_disable_round_trip(a, b):
    mask = ActiveSiteMask(a)
    assert mask.disable(b).enable(b).disabled == a - b
    # re-disabling what was disabled is the identity
    assert mask.enable(b).disable(b).disabled == a | b


@settings(max_examples=200, deadline=None)
@given(a=site_ids, b=site_ids, c=site_ids)
def test_disable_commutes_and_merges(a, b, c):
    mask = ActiveSiteMask(c)
    assert mask.disable(a).disable(b) == mask.disable(b).disable(a)
    assert mask.disable(a).disable(b) == mask.disable(a | b)
    assert mask.disable(a).disable(a) == mask.disable(a)


@settings(max_examples=200, deadline=None)
@given(a=site_ids, s=st.integers(min_value=0, max_value=255))
def test_enabled_is_set_membership(a, s):
    mask = ActiveSiteMask(a)
    assert mask.enabled(s) == (s not in a)
    assert not mask.disable([s]).enabled(s)
    assert mask.enable([s]).enabled(s)


@settings(max_examples=200, deadline=None)
@given(a=site_ids)
def test_mask_value_semantics(a):
    assert ActiveSiteMask(a) == ActiveSiteMask(sorted(a))
    assert hash(ActiveSiteMask(a)) == hash(ActiveSiteMask(sorted(a)))
    assert ActiveSiteMask(a).enable(a) == ALL_SITES


# ------------------------------------- gating at the controller gate

class _StubPlan:
    """Just the attributes the controller's gate reads."""

    def __init__(self, site_id, start=0, length=4):
        self.site_id = site_id
        self.start = start
        self.length = length


@settings(max_examples=200, deadline=None)
@given(disabled=site_ids, sites=st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=32))
def test_decide_honors_mask_per_site(disabled, sites):
    """decide() fires exactly the enabled sites, whatever order plans
    arrive in — fused plans carry their site id, so gating commutes
    with how the fusion pass grouped the instructions."""
    controller = AdaptiveController(mask=ActiveSiteMask(disabled))
    for site in sites:
        weight = controller.decide(_StubPlan(site), None, None)
        assert weight == (0 if site in disabled else 1)
    assert controller.total_firings == len(sites)


@settings(max_examples=200, deadline=None)
@given(disabled=site_ids, starts=st.lists(
    st.integers(min_value=0, max_value=1 << 20),
    min_size=1, max_size=16, unique=True))
def test_anonymous_plans_never_collide_with_site_ids(disabled, starts):
    """Plans without a recoverable ``bp.id`` get negative keys, so a
    real site id can never accidentally gate them."""
    controller = AdaptiveController(mask=ActiveSiteMask(disabled))
    for start in starts:
        plan = _StubPlan(site_id=None, start=start)
        assert AdaptiveController.site_key(plan) < 0
        assert controller.decide(plan, None, None) == 1


@settings(max_examples=100, deadline=None)
@given(disabled=site_ids, site=st.integers(min_value=0, max_value=255))
def test_toggle_matches_mask_algebra(disabled, site):
    """Controller.toggle is exactly the mask algebra, plus a
    generation bump (the executor's re-spec signal)."""
    controller = AdaptiveController(mask=ActiveSiteMask(disabled))
    generation = controller.generation
    controller.toggle(disable=[site])
    assert controller.mask == ActiveSiteMask(disabled).disable([site])
    controller.toggle(enable=[site])
    assert controller.mask == ActiveSiteMask(disabled).enable([site])
    assert controller.generation == generation + 2


# ----------------------------- fused-run per-site gating is precise

def _site_counts(name, disable=None):
    """Per-site firing counts of *name* under ``SiteCountProfiler``,
    with an optional set of sites disabled before launch."""
    workload = make(name)
    device = Device()
    controller = AdaptiveController()
    controller.install(device)
    profiler = SiteCountProfiler(device)
    spec = spec_from_flags(DEFAULT_RESPEC_FLAGS)
    kernel = profiler.runtime.compile(workload.build_ir(), spec)
    if disable:
        controller.toggle(disable=disable)
    workload.execute(device, kernel)
    return dict(profiler.counts), controller


_FULL_COUNTS: dict = {}


def _full_counts(name):
    if name not in _FULL_COUNTS:
        _FULL_COUNTS[name] = _site_counts(name)[0]
    return _FULL_COUNTS[name]


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_mask_patch_commutes_with_plan_fusion(data):
    """On a real fused run, disabling a subset of sites yields exactly
    the full run's per-site counts restricted to the enabled sites —
    the fusion pass can group sites however it likes, the mask still
    addresses each site individually."""
    name = "vectoradd"
    full = _full_counts(name)
    subset = data.draw(st.sets(st.sampled_from(sorted(full))),
                       label="disabled sites")
    toggled, controller = _site_counts(name, disable=subset)
    assert toggled == {site: count for site, count in full.items()
                       if site not in subset}
    assert sum(controller.fired.values()) \
        == sum(count for site, count in full.items() if site not in subset)
    assert sum(controller.skipped.values()) \
        == sum(count for site, count in full.items() if site in subset)


# ------------------------------------ toggled-off sites are invisible

HEAVY_FLAGS = ("-sassi-inst-before=all "
               "-sassi-before-args=mem-info,reg-info,cond-branch-info")


class _SnapshotExecutor(Executor):
    """Executor that snapshots each warp's registers when it exits
    (the PR 1 no-op-invisibility machinery)."""

    snapshots: list = []

    def _run_warp(self, warp, cta, counter):
        super()._run_warp(warp, cta, counter)
        if warp.done:
            type(self).snapshots.append(warp.regs.copy())


@pytest.fixture(autouse=True)
def _snapshot_launches(monkeypatch):
    monkeypatch.setattr(device_mod, "Executor", _SnapshotExecutor)


def _run_workload(name, instrumented=False, disable_all=False):
    """One complete run; returns (output, global memory, exit regs,
    controller)."""
    workload = make(name)
    device = Device()
    controller = None
    ir = workload.build_ir()
    if not instrumented:
        kernel = ptxas(ir)
        num_regs = kernel.num_regs
    else:
        controller = AdaptiveController()
        controller.install(device)
        runtime = SassiRuntime(device, poison_caller_saved=False)
        runtime.register_before_handler(lambda ctx: None)
        kernel = runtime.compile(ir, spec_from_flags(HEAVY_FLAGS))
        if disable_all:
            controller.toggle(
                disable=runtime.reports[-1].before_site_ids)
        num_regs = ptxas(workload.build_ir()).num_regs
    _SnapshotExecutor.snapshots = []
    output = workload.execute(device, kernel)
    preserved = [r for r in range(num_regs) if r not in CALLER_SAVED]
    regs = [snap[preserved] for snap in _SnapshotExecutor.snapshots]
    return output, device.global_mem.data.copy(), regs, controller


@pytest.mark.parametrize("name", ["rodinia/nn", "parboil/sgemm(small)"])
def test_toggled_off_sites_are_invisible(name):
    base_out, base_mem, base_regs, _ = _run_workload(name)
    inst_out, inst_mem, inst_regs, controller = _run_workload(
        name, instrumented=True, disable_all=True)
    assert np.array_equal(base_out, inst_out), \
        f"{name}: output differs with every site toggled off"
    assert np.array_equal(base_mem, inst_mem), \
        f"{name}: global memory differs with every site toggled off"
    assert len(base_regs) == len(inst_regs)
    for index, (base, inst) in enumerate(zip(base_regs, inst_regs)):
        assert np.array_equal(base, inst), \
            f"{name}: exit registers differ (warp exit #{index})"
    # the gate actually did the work: everything skipped, nothing fired
    assert sum(controller.fired.values()) == 0
    assert sum(controller.skipped.values()) > 0
