"""Unit tests for the lock-step engine, the CUPTI pieces, and program
linking/preassignment."""

import numpy as np
import pytest

from repro.isa import parse_kernel
from repro.isa.program import SassProgram
from repro.sassi.threadsimt import (
    All,
    Any_,
    AtomicAdd,
    Ballot,
    Shfl,
    ThreadHandlerError,
    ffs,
    popc,
    run_warp_handler,
)


def run_handler(lanes, fn, memory=None):
    memory = memory if memory is not None else {}

    def atomic(address, value, width, op):
        old = memory.get(address, 0)
        if op == "add":
            memory[address] = old + value
        elif op == "and":
            memory[address] = old & value
        elif op == "or":
            memory[address] = old | value
        return old

    run_warp_handler(lanes, fn, atomic)
    return memory


class TestLockstepEngine:
    def test_ballot_sees_all_lanes(self):
        seen = {}

        def handler(lane):
            seen[lane] = yield Ballot(lane % 2 == 0)

        run_handler([0, 1, 2, 3], handler)
        assert seen == {lane: 0b0101 for lane in range(4)}

    def test_all_and_any(self):
        results = {}

        def handler(lane):
            results.setdefault("all", (yield All(lane < 4)))
            results.setdefault("any", (yield Any_(lane == 2)))

        run_handler([0, 1, 2, 3], handler)
        assert results == {"all": 1, "any": 1}

    def test_shfl_reads_other_lane(self):
        got = {}

        def handler(lane):
            got[lane] = yield Shfl(lane * 10, 3)

        run_handler([0, 1, 2, 3], handler)
        assert got == {lane: 30 for lane in range(4)}

    def test_atomic_serializes_in_lane_order(self):
        order = {}

        def handler(lane):
            order[lane] = yield AtomicAdd(0x100, 1)

        memory = run_handler([0, 1, 2], handler)
        assert memory[0x100] == 3
        assert [order[lane] for lane in (0, 1, 2)] == [0, 1, 2]

    def test_early_return_leaves_lockstep(self):
        masks = []

        def handler(lane):
            if lane == 0:
                return
            masks.append((yield Ballot(1)))

        run_handler([0, 1, 2], handler)
        assert masks == [0b110, 0b110]

    def test_mismatched_intrinsics_detected(self):
        def handler(lane):
            if lane == 0:
                yield Ballot(1)
            else:
                yield AtomicAdd(0, 1)

        with pytest.raises(ThreadHandlerError):
            run_handler([0, 1], handler)

    def test_ffs_popc_match_cuda(self):
        assert [ffs(x) for x in (0, 1, 2, 0x80000000)] == [0, 1, 2, 32]
        assert popc(0xF0F0F0F0) == 16


class TestProgramLinking:
    def make_kernel(self, name):
        return parse_kernel(f".kernel {name}\nEXIT ;")

    def test_preassigned_base_is_honoured(self):
        program = SassProgram()
        base = program.preassign_base("k")
        placed = program.add_kernel(self.make_kernel("k"))
        assert placed.base_address == base

    def test_preassign_idempotent(self):
        program = SassProgram()
        assert program.preassign_base("k") == program.preassign_base("k")

    def test_handler_symbols_live_in_reserved_range(self):
        program = SassProgram()
        first = program.add_handler_symbol("h1")
        second = program.add_handler_symbol("h2")
        assert first >= SassProgram.HANDLER_BASE
        assert second != first
        assert program.add_handler_symbol("h1") == first

    def test_symbol_name_lookup(self):
        program = SassProgram()
        address = program.add_handler_symbol("my_handler")
        assert program.symbol_name(address) == "my_handler"
        assert program.symbol_name(0xDEAD) is None

    def test_pc_math(self):
        program = SassProgram()
        placed = program.add_kernel(self.make_kernel("k"))
        assert placed.index_of_pc(placed.pc_of(0)) == 0
        with pytest.raises(ValueError):
            placed.index_of_pc(placed.base_address + 3)


class TestCounterBufferModes:
    def test_whole_program_mode_never_zeroes(self):
        from repro.backend import ptxas
        from repro.sassi import SassiRuntime, spec_from_flags
        from repro.sassi.cupti import CounterBuffer, CuptiSubscription
        from repro.sim import Device
        from tests.conftest import build_vecadd, run_vecadd

        device = Device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 1, per_kernel=False)
        runtime = SassiRuntime(device)
        runtime.register_before_handler(
            lambda ctx: ctx.atomic_add(counters.element_ptr(0), 1))
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=memory"))
        run_vecadd(device, kernel, n=32, block=32)
        first = counters.final_totals()[0]
        run_vecadd(device, kernel, n=32, block=32)
        second = counters.final_totals()[0]
        assert second == 2 * first   # accumulated across launches
