"""Tests for the handler runtime: parameter views, thread-level lockstep
handlers with warp intrinsics, register write-back (error injection),
and the CUPTI counter machinery."""

import numpy as np
import pytest

from repro.backend import ptxas
from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Opcode
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CounterBuffer, CuptiSubscription, DeviceHashTable
from repro.sassi.threadsimt import AtomicAdd, Ballot, Shfl, ffs, popc
from repro.sim import Device, Dim3

from tests.conftest import build_vecadd, run_vecadd


class TestIntrinsicHelpers:
    def test_ffs(self):
        assert ffs(0) == 0
        assert ffs(1) == 1
        assert ffs(0b1000) == 4

    def test_popc(self):
        assert popc(0) == 0
        assert popc(0xFF) == 8
        assert popc(0x80000000) == 1


class TestBeforeParamsView:
    def collect(self, flags="-sassi-inst-before=memory "
                             "-sassi-before-args=mem-info"):
        device = Device()
        seen = []

        def handler(ctx):
            seen.append({
                "opcode": ctx.bp.GetOpcode(),
                "is_mem": ctx.bp.IsMem(),
                "will_execute": ctx.bp.GetInstrWillExecute().copy(),
                "ins_addr": ctx.bp.GetInsAddr(),
                "address": ctx.mp.GetAddress().copy() if ctx.mp else None,
                "width": ctx.mp.GetWidth() if ctx.mp else None,
                "is_load": ctx.mp.IsLoad() if ctx.mp else None,
                "domain": ctx.mp.GetDomain() if ctx.mp else None,
                "instr": ctx.bp.GetInstruction(),
            })

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler)
        kernel = runtime.compile(build_vecadd(), spec_from_flags(flags))
        run_vecadd(device, kernel, n=64, block=64)
        return seen

    def test_opcode_recovered_from_encoding(self):
        seen = self.collect()
        opcodes = {record["opcode"] for record in seen}
        assert opcodes == {Opcode.LDG, Opcode.STG}

    def test_memory_classes(self):
        seen = self.collect()
        assert all(record["is_mem"] for record in seen)
        loads = [r for r in seen if r["opcode"] is Opcode.LDG]
        assert all(r["is_load"] for r in loads)

    def test_width_and_domain(self):
        seen = self.collect()
        assert {r["width"] for r in seen} == {4}
        assert {r["domain"] for r in seen} == {MemSpace.GLOBAL}

    def test_addresses_are_the_lanes_effective_addresses(self):
        seen = self.collect()
        loads = [r for r in seen if r["opcode"] is Opcode.LDG]
        first = loads[0]
        active = np.nonzero(first["will_execute"])[0]
        addresses = first["address"][active]
        # unit-stride float loads: consecutive lanes 4 bytes apart
        assert ((addresses[1:] - addresses[:-1]) == 4).all()

    def test_instruction_lookup(self):
        seen = self.collect()
        instr = seen[0]["instr"]
        assert instr is not None and instr.is_memory

    def test_ins_addr_unique_per_site(self):
        seen = self.collect()
        by_site = {r["ins_addr"] for r in seen}
        assert len(by_site) == 3  # two loads and one store


class TestCondBranchParams:
    def test_direction_matches_lane_predicate(self):
        device = Device()
        directions = []

        def handler(ctx):
            if ctx.brp is not None:
                directions.append(
                    (ctx.mask.copy(), ctx.brp.GetDirection().copy()))

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler)
        b = KernelBuilder("branchy", [("out", PTR)])
        tid = b.tid_x()
        with b.if_(b.lt(tid, 10)):
            b.store(b.gep(b.param("out"), tid, 4), tid)
        kernel = runtime.compile(
            b.finish(),
            spec_from_flags("-sassi-inst-before=branches "
                            "-sassi-before-args=cond-branch-info"))
        ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(1), Dim3(32), [ptr])
        assert directions
        mask, direction = directions[0]
        # compiled as @!P0 BRA merge: lanes with tid >= 10 take it
        taken_lanes = np.nonzero(direction & mask)[0]
        assert (taken_lanes >= 10).all()


class TestThreadHandlers:
    def test_ballot_and_leader_election(self):
        device = Device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 2)

        def handler(t):
            active = yield Ballot(1)
            if t.lane_id == ffs(active) - 1:   # leader only
                yield AtomicAdd(counters.element_ptr(0), popc(active))
            yield AtomicAdd(counters.element_ptr(1), 1)

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler, kind="thread")
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=memory"))
        _, _, out, stats = run_vecadd(device, kernel, n=64, block=64)
        # leader-counted lanes == per-lane counts
        assert counters.totals[0] == counters.totals[1]
        assert counters.totals[1] == 3 * 64  # 3 memory ops, 64 threads

    def test_shfl(self):
        device = Device()
        observed = []

        def handler(t):
            got = yield Shfl(t.lane_id, 0)
            observed.append((t.lane_id, got))
            return

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler, kind="thread")
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=calls"))
        # no calls in vecadd -> no handler runs; use memory instead
        assert not observed

    def test_early_return_shrinks_ballot(self):
        device = Device()
        ballots = []

        def handler(t):
            if t.lane_id % 2 == 0:
                return
            ballots.append((yield Ballot(1)))

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler, kind="thread")
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=memory"))
        run_vecadd(device, kernel, n=32, block=32)
        assert ballots
        for mask in ballots:
            assert mask & 0x55555555 == 0  # even lanes returned


class TestRegisterWriteback:
    def test_handler_modifies_architectural_state(self):
        """The error-injection mechanism: an after-handler rewrites a
        destination register value and the kernel observes it."""
        device = Device()
        state = {"done": False}

        def handler(ctx):
            if state["done"] or ctx.rp is None:
                return
            if ctx.rp.GetNumGPRDsts() < 1:
                return
            if ctx.bp.GetOpcode() is not Opcode.IMUL:
                return  # target the doubling instruction specifically
            lane = ctx.leader()
            old = int(ctx.rp.GetRegValue(0)[lane])
            ctx.rp.SetRegValue(0, lane, old ^ 0x1)  # flip bit 0
            state["done"] = True

        runtime = SassiRuntime(device)
        runtime.register_after_handler(handler)
        b = KernelBuilder("flip", [("out", PTR)])
        tid = b.tid_x()
        doubled = b.mul(b.cvt(tid, Type.S32), 2)   # always even
        b.store(b.gep(b.param("out"), tid, 4), doubled)
        kernel = runtime.compile(
            b.finish(),
            spec_from_flags("-sassi-inst-after=reg-writes "
                            "-sassi-after-args=reg-info "
                            "-sassi-writeback-regs"))
        ptr = device.alloc(32 * 4)
        device.launch(kernel, Dim3(1), Dim3(32), [ptr])
        out = device.read_array(ptr, 32, np.int32)
        # exactly one perturbed value (odd), all others even
        assert (out % 2 == 1).sum() >= 1

    def test_without_writeback_state_untouched(self):
        device = Device()

        def handler(ctx):
            if ctx.rp is not None and ctx.rp.GetNumGPRDsts() >= 1:
                ctx.rp.SetRegValue(0, ctx.leader(), 0xFFFFFFFF)

        runtime = SassiRuntime(device)
        runtime.register_after_handler(handler)
        kernel = runtime.compile(
            build_vecadd(),
            spec_from_flags("-sassi-inst-after=reg-writes "
                            "-sassi-after-args=reg-info"))
        a, b, out, _ = run_vecadd(device, kernel, n=64, block=64)
        assert np.allclose(out, a + b)


class TestCupti:
    def test_counters_zeroed_per_launch(self):
        device = Device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 1)

        def handler(ctx):
            ctx.atomic_add(counters.element_ptr(0), 1)

        runtime = SassiRuntime(device)
        runtime.register_before_handler(handler)
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=memory"))
        run_vecadd(device, kernel, n=32, block=32)
        first = counters.records[-1].counters[0]
        run_vecadd(device, kernel, n=32, block=32)
        second = counters.records[-1].counters[0]
        assert first == second            # zeroed between launches
        assert counters.totals[0] == first + second

    def test_per_invocation_records(self):
        device = Device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 1)
        runtime = SassiRuntime(device)
        runtime.register_before_handler(lambda ctx: None)
        kernel = runtime.compile(
            build_vecadd(), spec_from_flags("-sassi-inst-before=memory"))
        run_vecadd(device, kernel)
        run_vecadd(device, kernel)
        assert [r.invocation for r in counters.records] == [0, 1]
        assert all(r.kernel == "vecadd" for r in counters.records)

    def test_device_hash_table(self):
        device = Device()
        table = DeviceHashTable(device, capacity=64, num_counters=2)

        class FakeCtx:
            def read_device(self, addr, width=4):
                return device.global_mem.read(
                    addr - 0x10000000, width)

            def write_device(self, addr, value, width=4):
                device.global_mem.write(addr - 0x10000000, width, value)

        ctx = FakeCtx()
        entry_a = table.find(ctx, 0x640)
        entry_b = table.find(ctx, 0x648)
        assert entry_a != entry_b
        assert table.find(ctx, 0x640) == entry_a  # stable
        ctx.write_device(table.counter_ptr(entry_a, 0), 7, 8)
        items = dict(table.items())
        assert items[0x640][0] == 7
