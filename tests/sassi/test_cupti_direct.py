"""Direct unit tests for the CUPTI analog (subscription, counter
buffers, device hash table) — no instrumentation pipeline involved."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ptxas
from repro.sassi.cupti import CounterBuffer, CuptiSubscription, \
    DeviceHashTable
from repro.sim import Device
from repro.sim.memory import GLOBAL_BASE

from tests.conftest import build_vecadd, run_vecadd


class _Ctx:
    """Minimal handler-context stand-in: generic-address device access."""

    def __init__(self, device):
        self.device = device

    def read_device(self, address, width=4):
        return self.device.global_mem.read(address - GLOBAL_BASE, width)

    def write_device(self, address, value, width=4):
        self.device.global_mem.write(address - GLOBAL_BASE, width,
                                     int(value))


class TestCuptiSubscription:
    def test_launch_before_exit(self):
        device = Device()
        subscription = CuptiSubscription(device)
        events = []
        subscription.on_kernel_launch(
            lambda d, k, grid, block: events.append(("launch", k.name)))
        subscription.on_kernel_exit(
            lambda d, k, stats: events.append(
                ("exit", k.name, stats.warp_instructions)))
        run_vecadd(device, ptxas(build_vecadd()))
        assert [event[0] for event in events] == ["launch", "exit"]
        assert events[0][1] == events[1][1] == "vecadd"
        assert events[1][2] > 0

    def test_subscribers_fire_in_registration_order(self):
        device = Device()
        subscription = CuptiSubscription(device)
        order = []
        subscription.on_kernel_launch(
            lambda *args: order.append("first"))
        subscription.on_kernel_launch(
            lambda *args: order.append("second"))
        run_vecadd(device, ptxas(build_vecadd()))
        assert order == ["first", "second"]

    def test_one_event_pair_per_launch(self):
        device = Device()
        subscription = CuptiSubscription(device)
        events = []
        subscription.on_kernel_exit(lambda *args: events.append("exit"))
        kernel = ptxas(build_vecadd())
        run_vecadd(device, kernel)
        run_vecadd(device, kernel)
        assert events == ["exit", "exit"]


class TestCounterBuffer:
    def test_zeroed_on_launch(self):
        device = Device()
        buffer = CounterBuffer(CuptiSubscription(device), 4)
        # dirty the device-side array; the launch hook must clear it
        device.memcpy_htod(buffer.device_ptr,
                           np.arange(1, 5, dtype=np.uint64))
        run_vecadd(device, ptxas(build_vecadd()))
        assert len(buffer.records) == 1
        assert (buffer.records[0].counters == 0).all()
        assert (buffer.totals == 0).all()

    def test_per_kernel_false_preserves_across_launches(self):
        device = Device()
        buffer = CounterBuffer(CuptiSubscription(device), 4,
                               per_kernel=False)
        values = np.arange(1, 5, dtype=np.uint64)
        device.memcpy_htod(buffer.device_ptr, values)
        run_vecadd(device, ptxas(build_vecadd()))
        assert (buffer.records[0].counters == values).all()
        assert (buffer.final_totals() == values).all()

    def test_totals_accumulate_per_invocation(self):
        device = Device()
        subscription = CuptiSubscription(device)
        buffer = CounterBuffer(subscription, 2)
        # emulate a kernel bumping counter 1 by writing after the zero
        subscription.on_kernel_launch(
            lambda d, k, grid, block: d.memcpy_htod(
                buffer.element_ptr(1), np.array([5], dtype=np.uint64)))
        kernel = ptxas(build_vecadd())
        run_vecadd(device, kernel)
        run_vecadd(device, kernel)
        assert [record.invocation for record in buffer.records] == [0, 1]
        assert (buffer.totals == np.array([0, 10], dtype=np.uint64)).all()

    def test_element_ptr_strides_by_dtype(self):
        device = Device()
        buffer = CounterBuffer(CuptiSubscription(device), 4)
        assert buffer.element_ptr(3) == buffer.device_ptr + 3 * 8


def _slot(key: int, capacity: int) -> int:
    tagged = int(key) | (1 << 63)
    return (tagged * 0x9E3779B97F4A7C15 >> 32) % capacity


def _colliding_keys(capacity: int, count: int):
    """Distinct keys whose initial probe slot is identical."""
    groups = {}
    for key in range(1, 10_000):
        groups.setdefault(_slot(key, capacity), []).append(key)
        if len(groups[_slot(key, capacity)]) >= count:
            return groups[_slot(key, capacity)][:count]
    raise AssertionError("no collision group found")


class TestDeviceHashTable:
    def test_find_inserts_then_returns_same_entry(self):
        device = Device()
        table = DeviceHashTable(device, capacity=16, num_counters=2)
        ctx = _Ctx(device)
        entry = table.find(ctx, 0xBEEF)
        assert table.find(ctx, 0xBEEF) == entry
        assert [key for key, _ in table.items()] == [0xBEEF]

    def test_collisions_probe_to_adjacent_slots(self):
        device = Device()
        capacity = 8
        table = DeviceHashTable(device, capacity=capacity, num_counters=1)
        ctx = _Ctx(device)
        first, second, third = _colliding_keys(capacity, 3)
        entries = [table.find(ctx, key) for key in (first, second, third)]
        assert len(set(entries)) == 3
        slots = sorted((entry - 8 - table.device_ptr) // table.entry_bytes
                       for entry in entries)
        base = _slot(first, capacity)
        assert slots == sorted((base + probe) % capacity
                               for probe in range(3))
        # each key still resolves to its own entry after the collisions
        for key, entry in zip((first, second, third), entries):
            assert table.find(ctx, key) == entry
        assert sorted(key for key, _ in table.items()) \
            == sorted((first, second, third))

    def test_counters_survive_roundtrip(self):
        device = Device()
        table = DeviceHashTable(device, capacity=8, num_counters=3)
        ctx = _Ctx(device)
        counters = table.find(ctx, 42)
        ctx.write_device(table.counter_ptr(counters, 0), 7, 8)
        ctx.write_device(table.counter_ptr(counters, 2), 9, 8)
        ((key, values),) = table.items()
        assert key == 42
        assert values.tolist() == [7, 0, 9]

    def test_key_zero_distinct_from_empty_slot(self):
        device = Device()
        table = DeviceHashTable(device, capacity=8, num_counters=1)
        ctx = _Ctx(device)
        entry = table.find(ctx, 0)
        assert table.find(ctx, 0) == entry
        assert [key for key, _ in table.items()] == [0]

    def test_full_table_raises(self):
        device = Device()
        table = DeviceHashTable(device, capacity=4, num_counters=1)
        ctx = _Ctx(device)
        for key in range(1, 5):
            table.find(ctx, key)
        with pytest.raises(RuntimeError, match="full"):
            table.find(ctx, 99)

    def test_clear_empties_the_table(self):
        device = Device()
        table = DeviceHashTable(device, capacity=8, num_counters=1)
        ctx = _Ctx(device)
        table.find(ctx, 1)
        table.clear()
        assert table.items() == []
