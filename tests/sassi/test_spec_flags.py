"""Tests for the where/what specification and the ptxas-style flags."""

import pytest

from repro.isa import parse_instruction
from repro.sassi import InstClass, InstrumentationSpec, What, spec_from_flags
from repro.sassi.flags import FlagError


def ins(text):
    return parse_instruction(text)


class TestInstClass:
    def test_all_matches_everything(self):
        assert InstClass.ALL.matches(ins("NOP ;"))

    def test_memory(self):
        assert InstClass.MEMORY.matches(ins("LDG R0, [R2] ;"))
        assert InstClass.MEMORY.matches(ins("STL [R1], R0 ;"))
        assert not InstClass.MEMORY.matches(ins("IADD R0, R0, 1 ;"))

    def test_branches_are_conditional_only(self):
        assert InstClass.BRANCHES.matches(ins("@P0 BRA `(L) ;"))
        assert not InstClass.BRANCHES.matches(ins("BRA `(L) ;"))
        assert InstClass.BRANCHES.matches(ins("@!P0 BRK ;"))

    def test_calls(self):
        assert InstClass.CALLS.matches(ins("JCAL 0x7f000000 ;"))

    def test_reg_classes(self):
        assert InstClass.REG_WRITES.matches(ins("IADD R0, R2, R3 ;"))
        assert InstClass.REG_READS.matches(ins("IADD R0, R2, R3 ;"))
        assert not InstClass.REG_WRITES.matches(ins("STG [R2], R0 ;"))
        assert InstClass.REG_WRITES.matches(
            ins("ISETP.LT.S32.AND P0, PT, R0, R1, PT ;"))


class TestSpec:
    def test_sassi_tagged_never_instrumented(self):
        spec = InstrumentationSpec(before=frozenset({InstClass.ALL}))
        tagged = ins("IADD R0, R0, 1 ;").with_tag("sassi")
        assert not spec.instruments_before(tagged)

    def test_after_skips_control_transfers(self):
        spec = InstrumentationSpec(after=frozenset({InstClass.ALL}))
        assert not spec.instruments_after(ins("BRA `(L) ;"))
        assert not spec.instruments_after(ins("EXIT ;"))
        assert spec.instruments_after(ins("IADD R0, R0, 1 ;"))

    def test_before_instruments_branches(self):
        spec = InstrumentationSpec(before=frozenset({InstClass.BRANCHES}))
        assert spec.instruments_before(ins("@P0 BRA `(L) ;"))
        assert not spec.instruments_before(ins("IADD R0, R0, 1 ;"))


class TestFlags:
    def test_paper_style_flags(self):
        spec = spec_from_flags(
            "-sassi-inst-before=memory,branches "
            "-sassi-before-args=mem-info,cond-branch-info")
        assert spec.before == frozenset({InstClass.MEMORY,
                                         InstClass.BRANCHES})
        assert spec.what == frozenset({What.MEMORY, What.COND_BRANCH})

    def test_after_flags(self):
        spec = spec_from_flags(
            "-sassi-inst-after=reg-writes -sassi-after-args=reg-info")
        assert spec.after == frozenset({InstClass.REG_WRITES})
        assert spec.what == frozenset({What.REGISTERS})

    def test_handler_name_override(self):
        spec = spec_from_flags(
            "-sassi-inst-before=all -sassi-before-handler=my_handler")
        assert spec.before_handler == "my_handler"

    def test_writeback_flag(self):
        spec = spec_from_flags(
            "-sassi-inst-after=reg-writes -sassi-writeback-regs")
        assert spec.writeback_registers

    def test_unknown_flag_rejected(self):
        with pytest.raises(FlagError):
            spec_from_flags("-sassi-frobnicate=yes")

    def test_unknown_class_rejected(self):
        with pytest.raises(FlagError):
            spec_from_flags("-sassi-inst-before=everything")

    def test_list_input(self):
        spec = spec_from_flags(["-sassi-inst-before=calls"])
        assert spec.before == frozenset({InstClass.CALLS})
