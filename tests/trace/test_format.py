"""Format-level tests: header/footer framing, manifests, checksums,
and torn-write detection for the ``.rptrace`` container."""

from __future__ import annotations

import io

import pytest

from repro.trace.format import (
    BranchEvent,
    EncoderState,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MAGIC,
    MemEvent,
    TAG_BRANCH,
    TAG_INSTR,
    TAG_LAUNCH,
    TAG_MEM,
    TRAILER_MAGIC,
    TRAILER_SIZE,
    TraceFormatError,
    VERSION,
    decode_event,
    decode_varint,
    encode_event,
    encode_varint,
)
from repro.trace.io import TraceReader, TraceWriter

EVENTS = [
    LaunchEvent(kernel="vecadd", grid=(4, 1, 1), block=(128, 1, 1),
                launch_index=0),
    InstrEvent(ins_addr=0x1000, opcode=7, lanes=32, width=0),
    MemEvent(ins_addr=0x1010, flags=1, width=4, active_lanes=32,
             line_addresses=(0x10000000, 0x10000020, 0x10000040)),
    BranchEvent(ins_addr=0x1020, active=32, taken=5, not_taken=27),
    InstrEvent(ins_addr=0x1030, opcode=9, lanes=17, width=8),
    MemEvent(ins_addr=0x1030, flags=2, width=8, active_lanes=17,
             line_addresses=(0x10000040,)),
    KernelEndEvent(warp_instructions=1234),
    LaunchEvent(kernel="vecadd", grid=(4, 1, 1), block=(128, 1, 1),
                launch_index=1),
    InstrEvent(ins_addr=0x1000, opcode=7, lanes=32, width=0),
    KernelEndEvent(warp_instructions=99),
]


def write_trace(target, events=EVENTS):
    with TraceWriter(target) as writer:
        for event in events:
            writer.write(event)
    return writer.close()


class TestCodec:
    def test_single_event_roundtrip(self):
        for event in EVENTS:
            enc, dec = EncoderState(), EncoderState()
            data = encode_event(event, enc)
            tag, pos = decode_varint(data, 0)
            decoded, pos = decode_event(tag, data, pos, dec)
            assert decoded == event
            assert pos == len(data)

    def test_stream_roundtrip_preserves_delta_state(self):
        enc, dec = EncoderState(), EncoderState()
        blob = b"".join(encode_event(e, enc) for e in EVENTS)
        pos, out = 0, []
        while pos < len(blob):
            tag, pos = decode_varint(blob, pos)
            event, pos = decode_event(tag, blob, pos, dec)
            out.append(event)
        assert out == EVENTS

    def test_launch_resets_delta_state(self):
        # the second launch's first InstrEvent re-encodes its absolute
        # address, so a kernel frame decodes without earlier context
        enc = EncoderState()
        for event in EVENTS[:7]:
            encode_event(event, enc)
        assert enc.prev_addr != 0
        encode_event(EVENTS[7], enc)
        assert enc.prev_addr == 0


class TestContainer:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        manifest = write_trace(path)
        assert list(TraceReader(path).events()) == EVENTS
        assert manifest.total_events == len(EVENTS)

    def test_filelike_roundtrip(self):
        buf = io.BytesIO()
        write_trace(buf)
        assert list(TraceReader(buf).events()) == EVENTS

    def test_header_layout(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        write_trace(path)
        with open(path, "rb") as handle:
            head = handle.read(5)
        assert head[:4] == MAGIC
        assert head[4] == VERSION

    def test_trailer_layout(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        write_trace(path)
        with open(path, "rb") as handle:
            data = handle.read()
        assert data[-4:] == TRAILER_MAGIC
        footer_len = int.from_bytes(data[-8:-4], "little")
        assert 0 < footer_len < len(data)

    def test_manifest_matches_stream(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        written = write_trace(path)
        manifest = TraceReader(path).manifest()
        assert manifest == written
        assert manifest.total_events == len(EVENTS)
        assert manifest.count(TAG_LAUNCH) == 2
        assert manifest.count(TAG_INSTR) == 3
        assert manifest.count(TAG_MEM) == 2
        assert manifest.count(TAG_BRANCH) == 1
        assert manifest.kind_counts()["launch"] == 2

    def test_empty_trace_is_valid(self, tmp_path):
        path = str(tmp_path / "empty.rptrace")
        manifest = write_trace(path, events=[])
        assert manifest.total_events == 0
        assert list(TraceReader(path).events()) == []

    def test_writer_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        writer = TraceWriter(path)
        writer.write(EVENTS[1])
        first = writer.close()
        assert writer.close() == first

    def test_write_after_close_raises(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.rptrace"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write(EVENTS[1])

    def test_tiny_buffer_still_correct(self, tmp_path):
        path = str(tmp_path / "t.rptrace")
        with TraceWriter(path, buffer_bytes=1) as writer:
            for event in EVENTS:
                writer.write(event)
        assert list(TraceReader(path).events()) == EVENTS


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.rptrace")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 64)
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(TraceReader(path).events())

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "v9.rptrace")
        write_trace(path)
        with open(path, "r+b") as handle:
            handle.seek(4)
            handle.write(bytes([VERSION + 1]))
        with pytest.raises(TraceFormatError, match="version"):
            list(TraceReader(path).events())
        with pytest.raises(TraceFormatError, match="version"):
            TraceReader(path).manifest()

    def test_torn_write_detected(self, tmp_path):
        # chop the footer + some events off: a crash mid-stream
        path = str(tmp_path / "torn.rptrace")
        write_trace(path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        with pytest.raises(TraceFormatError):
            list(TraceReader(path).events())
        with pytest.raises(TraceFormatError, match="torn"):
            TraceReader(path).manifest()

    def test_bitflip_fails_checksum(self, tmp_path):
        path = str(tmp_path / "flip.rptrace")
        write_trace(path)
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        # flip one bit inside the event stream (past the header, well
        # before the footer)
        data[10] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(TraceFormatError):
            list(TraceReader(path).events())

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot open"):
            list(TraceReader(str(tmp_path / "nope.rptrace")).events())

    def test_manifest_on_headerless_garbage(self, tmp_path):
        path = str(tmp_path / "garbage.rptrace")
        with open(path, "wb") as handle:
            handle.write(b"\x01\x02")
        with pytest.raises(TraceFormatError):
            TraceReader(path).manifest()


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1)


def test_varint_rejects_overlong():
    with pytest.raises(TraceFormatError, match="too long"):
        decode_varint(b"\xff" * 11 + b"\x01", 0)


def test_trailer_size_constant():
    assert TRAILER_SIZE == 8
