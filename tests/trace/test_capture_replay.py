"""Record/replay equality: offline analyses over a captured trace are
EXACTLY equal to the live-instrumented profilers they replace, across
multiple workloads — plus determinism of capture and replay."""

from __future__ import annotations

import filecmp

import pytest

from repro.handlers import (
    BranchProfiler,
    MemoryDivergenceProfiler,
    MemoryTracer,
    OpcodeHistogram,
)
from repro.sim import Device
from repro.sim.cache import Cache
from repro.trace import (
    CacheSimAnalysis,
    DivergenceAnalysis,
    MemoryDivergenceAnalysis,
    OpcodeHistogramAnalysis,
    TraceReader,
    capture_workload,
    replay,
)
from repro.workloads import make

WORKLOADS = ("vectoradd", "parboil/sgemm(small)", "rodinia/pathfinder")


@pytest.fixture(scope="module", params=WORKLOADS)
def captured(request, tmp_path_factory):
    """One capture + one full replay per workload, shared by the
    equality tests."""
    name = request.param
    path = str(tmp_path_factory.mktemp("traces") / "run.rptrace")
    manifest, verified, _ = capture_workload(name, path)
    assert verified, f"capture run of {name} produced a wrong result"
    analyses = replay(path, [CacheSimAnalysis(), DivergenceAnalysis(),
                             MemoryDivergenceAnalysis(),
                             OpcodeHistogramAnalysis()])
    return name, path, manifest, analyses


def _live_run(name, profiler_cls):
    workload = make(name)
    device = Device()
    profiler = profiler_cls(device)
    kernel = profiler.compile(workload.build_ir())
    workload.execute(device, kernel)
    return profiler


class TestReplayEqualsLive:
    def test_opcode_histogram(self, captured):
        name, _, _, analyses = captured
        live = _live_run(name, OpcodeHistogram)
        assert analyses[3].totals() == live.totals()

    def test_branch_divergence(self, captured):
        name, _, _, analyses = captured
        live = _live_run(name, BranchProfiler)
        assert analyses[1].summary() == live.summary()
        # per-branch counters match as a multiset; addresses are
        # layout-dependent (live reports post-injection addresses, the
        # trace the original ones)
        def counters(rows):
            return sorted((b.total, b.active_threads, b.taken_threads,
                           b.not_taken_threads, b.divergent)
                          for b in rows)
        assert counters(analyses[1].branches()) == \
            counters(live.branches())

    def test_memory_divergence_matrix(self, captured):
        name, _, _, analyses = captured
        live = _live_run(name, MemoryDivergenceProfiler)
        assert (analyses[2].matrix() == live.matrix()).all()
        assert analyses[2].diverged_fraction() == \
            live.diverged_fraction()

    def test_cache_simulation(self, captured):
        name, _, _, analyses = captured
        live = _live_run(name, MemoryTracer)
        l2 = Cache(256 << 10, ways=16, name="L2")
        l1 = Cache(16 << 10, ways=4, name="L1", next_level=l2)
        live.replay_through(l1)
        live.close()
        sim = analyses[0]
        assert (l1.stats.accesses, l1.stats.hits, l1.stats.misses) == \
            (sim.l1.stats.accesses, sim.l1.stats.hits,
             sim.l1.stats.misses)
        assert (l2.stats.accesses, l2.stats.hits, l2.stats.misses) == \
            (sim.l2.stats.accesses, sim.l2.stats.hits,
             sim.l2.stats.misses)

    def test_manifest_counts_cover_stream(self, captured):
        _, path, manifest, _ = captured
        events = list(TraceReader(path).events())
        assert manifest.total_events == len(events)
        assert sum(count for _, count in manifest.counts) == len(events)


class TestDeterminism:
    def test_capture_is_bit_deterministic(self, tmp_path):
        a = str(tmp_path / "a.rptrace")
        b = str(tmp_path / "b.rptrace")
        capture_workload("vectoradd", a)
        capture_workload("vectoradd", b)
        assert filecmp.cmp(a, b, shallow=False)

    def test_replay_is_deterministic(self, tmp_path):
        path = str(tmp_path / "run.rptrace")
        capture_workload("vectoradd", path)
        first = replay(path, [CacheSimAnalysis(),
                              OpcodeHistogramAnalysis()])
        second = replay(path, [CacheSimAnalysis(),
                               OpcodeHistogramAnalysis()])
        assert first[0].result() == second[0].result()
        assert first[1].result() == second[1].result()


class TestReplayEngine:
    def test_make_analysis_registry(self):
        from repro.trace import ANALYSES, make_analysis

        for name in ANALYSES:
            assert make_analysis(name).name == name
        with pytest.raises(KeyError):
            make_analysis("not-an-analysis")

    def test_reports_are_strings(self, captured):
        _, _, _, analyses = captured
        for analysis in analyses:
            assert isinstance(analysis.report(), str)
            assert analysis.report()

    def test_telemetry_counters(self, tmp_path):
        from repro.telemetry import TELEMETRY

        path = str(tmp_path / "run.rptrace")
        TELEMETRY.enable(reset=True)
        try:
            manifest, _, _ = capture_workload("vectoradd", path)
            replay(path, [OpcodeHistogramAnalysis()])
            counters = TELEMETRY.counters
            assert counters["trace.events"] == manifest.total_events
            assert counters["trace.replay.events"] == \
                manifest.total_events
            assert counters["trace.bytes_written"] > 0

            names = {node.name for root in TELEMETRY.roots
                     for node in root.walk()}
            assert "trace.capture" in names
            assert "trace.replay" in names
        finally:
            TELEMETRY.disable()
