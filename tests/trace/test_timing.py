"""The timing differential suite.

Three layers:

1. **Segmentation** (synthetic event streams): the warp-stream
   reconstruction recovers CTA/warp boundaries, barrier passes,
   partial-exit fall-throughs, and divergence flags from warp-ID-less
   traces.
2. **Live == replay, bit-identically** (the satellite): one capture
   run tee'd through a live :class:`TimingModel` and an offline replay
   of the very same trace produce identical reports — cycles, bubbles,
   hotspots — on three workloads under both issue policies.  On real
   workloads the reconstruction is also cross-checked against the
   executor: instruction totals match ``warp_instructions`` and
   scheduler barrier releases match ``KernelStats.barriers``.
3. **Timing is invisible** (the other satellite half): capturing with
   the tee leaves the trace bytes, workload output, KernelStats, and
   telemetry counters byte-identical to a plain capture — enabling
   timing cannot perturb seed behavior.

Plus the acceptance scenario: a synthetic stall-heavy single-warp
kernel whose injected DRAM-latency bubble must surface in
``repro trace summary``.
"""

from __future__ import annotations

import filecmp

import numpy as np
import pytest

from repro.backend import ptxas
from repro.cli import main
from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES
from repro.sim import Device
from repro.sim.scheduler import DRAM_LATENCY
from repro.telemetry.collector import TELEMETRY
from repro.trace.capture import TraceRecorder
from repro.trace.format import (
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MEM_FLAG_LOAD,
    MemEvent,
)
from repro.trace.io import TraceReader, TraceWriter
from repro.trace.replay import replay
from repro.trace.timing import (
    TeeWriter,
    TimingAnalysis,
    TimingModel,
    live_timing,
    render_iters,
    render_summary,
)
from repro.workloads import make

WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "parboil/sgemm(small)",
]

POLICIES = ("gto", "lrr")


# ---------------------------------------------------------------- helpers

def _instr(addr, opcode, lanes=32):
    return InstrEvent(ins_addr=addr, opcode=opcode.value, lanes=lanes,
                      width=4)


def _launch(block_threads, ctas=1, index=0, kernel="k"):
    return LaunchEvent(kernel=kernel, grid=(ctas, 1, 1),
                       block=(block_threads, 1, 1), launch_index=index)


def _feed(events):
    model = TimingModel()
    model.feed_batch(events)
    model.finish()
    return model


def _stream_opcodes(model):
    """[[ [opcode per instr] per warp ] per CTA] of the last launch."""
    builder = model.launches[-1]
    return [[[i.opcode for i in s.instrs] for s in streams]
            for streams in builder.ctas]


# ------------------------------------------------------- 1. segmentation

class TestSegmentation:
    def test_two_warps_sequential_exits(self):
        b = INSTRUCTION_BYTES
        events = [_launch(64)]
        for _warp in range(2):
            events += [_instr(0, Opcode.IADD), _instr(b, Opcode.EXIT)]
        events.append(KernelEndEvent(warp_instructions=4))
        model = _feed(events)
        assert _stream_opcodes(model) == [[
            [Opcode.IADD, Opcode.EXIT], [Opcode.IADD, Opcode.EXIT]]]

    def test_partial_exit_falls_through_same_warp(self):
        b = INSTRUCTION_BYTES
        events = [
            _launch(32),
            _instr(0, Opcode.EXIT, lanes=32),   # some lanes exit...
            _instr(b, Opcode.IADD, lanes=7),    # ...survivors continue
            _instr(2 * b, Opcode.EXIT, lanes=7),
            KernelEndEvent(warp_instructions=3),
        ]
        model = _feed(events)
        assert _stream_opcodes(model) == [[
            [Opcode.EXIT, Opcode.IADD, Opcode.EXIT]]]

    def test_barrier_passes_round_robin(self):
        b = INSTRUCTION_BYTES
        pre = [Opcode.IADD, Opcode.BAR]
        post = [Opcode.FMUL, Opcode.EXIT]
        events = [_launch(64)]
        for _warp in range(2):          # pass 1: both warps park
            events += [_instr(i * b, op) for i, op in enumerate(pre)]
        for _warp in range(2):          # release; pass 2: both retire
            events += [_instr((2 + i) * b, op)
                       for i, op in enumerate(post)]
        events.append(KernelEndEvent(warp_instructions=8))
        model = _feed(events)
        assert _stream_opcodes(model) == [[pre + post, pre + post]]
        report = model.schedule("gto")
        assert report.launches[0].schedule.barrier_releases == 1

    def test_multiple_ctas_split_at_entry(self):
        b = INSTRUCTION_BYTES
        per_warp = [Opcode.IADD, Opcode.EXIT]
        events = [_launch(32, ctas=3)]
        for _cta in range(3):
            events += [_instr(i * b, op) for i, op in enumerate(per_warp)]
        events.append(KernelEndEvent(warp_instructions=6))
        model = _feed(events)
        assert _stream_opcodes(model) == [[per_warp]] * 3
        assert model.schedule("gto").launches[0].ctas == 3

    def test_divergence_flags_and_rebase(self):
        b = INSTRUCTION_BYTES
        events = [
            _launch(32),
            _instr(0, Opcode.IADD, lanes=32),
            _instr(b, Opcode.IADD, lanes=12),      # divergent
            _instr(2 * b, Opcode.IADD, lanes=32),  # reconverged
            _instr(3 * b, Opcode.EXIT, lanes=32),  # most lanes exit
            _instr(4 * b, Opcode.IADD, lanes=4),   # survivors: re-based
            _instr(5 * b, Opcode.EXIT, lanes=4),
            KernelEndEvent(warp_instructions=6),
        ]
        model = _feed(events)
        (cta,) = model.launches[-1].ctas
        flags = [i.divergent for i in cta[0].instrs]
        assert flags == [False, True, False, False, False, False]

    def test_unwind_continues_same_warp(self):
        b = INSTRUCTION_BYTES
        events = [
            _launch(64),
            _instr(0, Opcode.IADD),
            # EXIT whose continuation is neither addr+8 nor another
            # warp's start: a divergence-stack unwind target
            _instr(b, Opcode.EXIT, lanes=9),
            _instr(5 * b, Opcode.IADD, lanes=23),
            _instr(6 * b, Opcode.EXIT, lanes=23),
            _instr(0, Opcode.IADD),               # warp 1 starts fresh
            _instr(b, Opcode.EXIT, lanes=32),
            KernelEndEvent(warp_instructions=6),
        ]
        model = _feed(events)
        streams = _stream_opcodes(model)
        assert [len(s) for s in streams[0]] == [4, 2]

    def test_instruction_totals_always_conserved(self):
        b = INSTRUCTION_BYTES
        events = [_launch(96, ctas=2)]
        for _cta in range(2):
            for _warp in range(3):
                events += [_instr(0, Opcode.IADD),
                           _instr(b, Opcode.EXIT)]
        events.append(KernelEndEvent(warp_instructions=12))
        model = _feed(events)
        builder = model.launches[-1]
        streamed = sum(len(s.instrs) for streams in builder.ctas
                       for s in streams)
        assert streamed == builder.instr_count == 12
        assert builder.desyncs == 0


# --------------------------------------- 2. live == replay differential

@pytest.fixture(scope="module", params=WORKLOADS)
def captured(request, tmp_path_factory):
    """One capture run per workload, tee'd through a live TimingModel;
    returns (name, trace_path, live_model, stats_list)."""
    name = request.param
    path = str(tmp_path_factory.mktemp("timing")
               / (name.replace("/", "_") + ".rptrace"))
    live = TimingModel()
    workload = make(name)
    device = Device()
    stats_list = []
    device.on_kernel_exit(lambda _d, _k, stats: stats_list.append(stats))
    writer = TraceWriter(path)
    recorder = TraceRecorder(device, TeeWriter(writer, live))
    kernel = recorder.compile(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)
    recorder.writer.close()
    return name, path, live, stats_list


class TestLiveReplayDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_replay_timing_is_bit_identical_to_live(self, captured,
                                                    policy):
        name, path, live, _stats = captured
        analysis = TimingAnalysis(policy=policy)
        replay(path, [analysis])
        replayed = analysis.model.schedule(policy)
        reference = live.schedule(policy)
        assert len(replayed.launches) == len(reference.launches)
        for got, want in zip(replayed.launches, reference.launches):
            assert got.cycles == want.cycles, name
            assert got.schedule.busy_cycles == want.schedule.busy_cycles
            assert got.schedule.stall_cycles == want.schedule.stall_cycles
            assert [(b.cta, b.start, b.cycles, b.reason, b.addr)
                    for b in got.schedule.bubbles] == \
                   [(b.cta, b.start, b.cycles, b.reason, b.addr)
                    for b in want.schedule.bubbles]
            assert {a: (h.issues, h.issue_cycles, h.stall_cycles)
                    for a, h in got.schedule.hotspots.items()} == \
                   {a: (h.issues, h.issue_cycles, h.stall_cycles)
                    for a, h in want.schedule.hotspots.items()}
            assert got.spans == want.spans
        assert render_summary(replayed) == render_summary(reference)
        assert render_iters(replayed) == render_iters(reference)

    def test_reconstruction_matches_executor_truth(self, captured):
        name, _path, live, stats_list = captured
        # instruction conservation against the executor's own counts
        # (warp_instructions includes the injected SASSI instructions;
        # traced events cover only the application's)
        for builder, stats in zip(live.launches, stats_list):
            app_instrs = (stats.warp_instructions
                          - stats.sassi_warp_instructions)
            assert builder.instr_count == app_instrs, name
            assert builder.desyncs == 0
            streamed = sum(len(s.instrs) for streams in builder.ctas
                           for s in streams)
            assert streamed == builder.instr_count
        # barrier releases match the executor's barrier count
        report = live.schedule("gto")
        for launch, stats in zip(report.launches, stats_list):
            assert launch.schedule.barrier_releases == stats.barriers


class TestTimingIsInvisible:
    def test_tee_leaves_seed_behavior_byte_identical(self, tmp_path):
        """Capturing with the timing tee produces the same trace bytes,
        output, stats, and telemetry as a plain capture."""
        name = "rodinia/nn"

        def run(with_timing: bool):
            path = str(tmp_path / f"t{int(with_timing)}.rptrace")
            workload = make(name)
            device = Device()
            stats_list = []
            device.on_kernel_exit(
                lambda _d, _k, stats: stats_list.append(stats))
            writer = TraceWriter(path)
            sink = TeeWriter(writer, TimingModel()) if with_timing \
                else writer
            TELEMETRY.enable(reset=True)
            try:
                recorder = TraceRecorder(device, sink)
                kernel = recorder.compile(workload.build_ir())
                output = workload.execute(device, kernel)
                counters = dict(TELEMETRY.counters)
            finally:
                TELEMETRY.disable()
                TELEMETRY.reset()
            sink.close()
            return path, output, stats_list, counters

        plain_path, plain_out, plain_stats, plain_tel = run(False)
        timed_path, timed_out, timed_stats, timed_tel = run(True)
        assert filecmp.cmp(plain_path, timed_path, shallow=False), \
            "timing tee changed the trace bytes"
        np.testing.assert_array_equal(plain_out, timed_out)
        assert plain_stats == timed_stats
        assert plain_tel == timed_tel

    def test_timing_needs_no_executor_cooperation(self):
        """The fast path knows nothing about timing: an uninstrumented
        run still produces the flat cycle counts it always did."""
        workload = make("vectoradd")
        device = Device()
        workload.execute(device, ptxas(workload.build_ir()))
        assert workload.last_trace.cycles > 0


# ------------------------------- 3. synthetic stall-heavy acceptance

class TestStallHeavyKernel:
    @pytest.fixture
    def stall_trace(self, tmp_path):
        """A hand-built single-warp kernel with one DRAM-missing load
        feeding a dependent chain: the bubble is the load's latency."""
        b = INSTRUCTION_BYTES
        path = str(tmp_path / "stall.rptrace")
        line = 1 << 20
        with TraceWriter(path) as writer:
            writer.write(_launch(32, kernel="stallheavy"))
            writer.write(_instr(0, Opcode.IADD))
            writer.write(_instr(b, Opcode.LDG))
            writer.write(MemEvent(ins_addr=b, flags=MEM_FLAG_LOAD,
                                  width=4, active_lanes=32,
                                  line_addresses=(line,)))
            writer.write(_instr(2 * b, Opcode.IADD))
            writer.write(_instr(3 * b, Opcode.IADD))   # waits on the LDG
            writer.write(_instr(4 * b, Opcode.EXIT))
            writer.write(KernelEndEvent(warp_instructions=5))
        return path

    def test_summary_reports_the_injected_bubble(self, stall_trace,
                                                 capsys):
        assert main(["trace", "summary", stall_trace]) == 0
        out = capsys.readouterr().out
        assert "kernel stallheavy" in out
        assert "mem_dep" in out
        # the bubble region names the cold-missing load
        assert f"on 0x{INSTRUCTION_BYTES:08x} LDG" in out

    @pytest.mark.parametrize("policy", POLICIES)
    def test_bubble_is_the_dram_latency(self, stall_trace, policy):
        analysis = TimingAnalysis(policy=policy)
        replay(stall_trace, [analysis])
        (launch,) = analysis.model.schedule(policy).launches
        top = launch.schedule.top_bubbles(1)[0]
        assert top.reason == "mem_dep"
        assert top.addr == INSTRUCTION_BYTES
        assert top.opcode is Opcode.LDG
        # a cold miss goes to DRAM; the chain is otherwise short, so
        # most of the wait is exposed as one bubble
        assert top.cycles > DRAM_LATENCY // 2
        assert launch.schedule.stall_cycles["mem_dep"] >= top.cycles


# ------------------------------------------------ replay integration

class TestReplayRegistration:
    def test_timing_is_a_registered_analysis(self, tmp_path):
        from repro.trace import ANALYSES, make_analysis

        assert "timing" in ANALYSES
        analysis = make_analysis("timing")
        assert isinstance(analysis, TimingAnalysis)
        assert analysis.policy == "gto"

    def test_report_line(self, tmp_path):
        b = INSTRUCTION_BYTES
        path = str(tmp_path / "tiny.rptrace")
        with TraceWriter(path) as writer:
            writer.write(_launch(32))
            writer.write(_instr(0, Opcode.IADD))
            writer.write(_instr(b, Opcode.EXIT))
            writer.write(KernelEndEvent(warp_instructions=2))
        (analysis,) = replay(path, [TimingAnalysis()])
        line = analysis.report()
        assert line.startswith("timing[gto]:")
        assert "cycles" in line
        result = analysis.result()
        assert result["total_cycles"] > 0
        assert result["launches"][0]["issued"] == 2
