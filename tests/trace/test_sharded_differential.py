"""Differential suite: sharded replay is bit-identical to serial.

The contract ``repro replay --jobs N`` ships on: for every stock
analysis (cachesim, divergence, memdiv, opcodes, timing), replaying a
trace partitioned by kernel-launch frame across worker processes and
merging the shard pieces in launch order produces byte-for-byte the
``result()`` JSON and ``report()`` text of the one-pass streaming
replay — at any job count, with or without a ``.rpti`` sidecar on
disk.  CI runs this file under a no-skip gate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.trace.capture import capture_workload
from repro.trace.format import MEM_FLAG_LOAD, MemEvent
from repro.trace.index import ensure_index, index_path_for
from repro.trace.io import TraceWriter
from repro.trace.replay import make_analysis, replay, replay_sharded

WORKLOADS = ("rodinia/pathfinder", "rodinia/lud")
ANALYSES = ("cachesim", "divergence", "memdiv", "opcodes", "timing")
JOB_COUNTS = (2, 4)


def canonical(analyses):
    """The byte-identity surface: result JSON + report text per
    analysis (same serialization the service's canonical bytes use)."""
    return [(json.dumps(a.result(), sort_keys=True,
                        separators=(",", ":")),
             a.report())
            for a in analyses]


@pytest.fixture(scope="module", params=WORKLOADS)
def captured(request, tmp_path_factory):
    safe = request.param.replace("/", "_")
    path = str(tmp_path_factory.mktemp("sharded") / f"{safe}.rptrace")
    _, verified, _ = capture_workload(request.param, path)
    assert verified
    return path


@pytest.fixture(scope="module")
def serial_baseline(captured):
    return canonical(replay(captured,
                            [make_analysis(n) for n in ANALYSES]))


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_sharded_replay_bit_identical(captured, serial_baseline, jobs):
    index = ensure_index(captured)
    assert index is not None and index.shardable
    assert index.launches > 1, "need a multi-launch trace to shard"
    sharded = canonical(replay_sharded(captured, ANALYSES, jobs=jobs))
    assert sharded == serial_baseline


def test_sharded_without_sidecar_bit_identical(captured, serial_baseline,
                                               tmp_path):
    # copy the trace without its sidecar: the index is rebuilt by a
    # one-off scan and the partition (hence the bytes) is unchanged
    bare = str(tmp_path / "bare.rptrace")
    with open(captured, "rb") as src, open(bare, "wb") as dst:
        dst.write(src.read())
    assert not os.path.exists(index_path_for(bare))
    sharded = canonical(replay_sharded(bare, ANALYSES, jobs=2))
    assert sharded == serial_baseline


def test_single_analysis_subsets_match(captured, serial_baseline):
    for position, name in enumerate(ANALYSES):
        (only,) = replay_sharded(captured, [name], jobs=2)
        assert canonical([only]) == [serial_baseline[position]]


def test_frameless_trace_falls_back_to_streaming(tmp_path):
    # a trace with no launch framing cannot shard; replay_sharded must
    # still answer — via the streaming pass — with identical results
    path = str(tmp_path / "frameless.rptrace")
    with TraceWriter(path) as writer:
        for k in range(40):
            writer.write(MemEvent(ins_addr=0x1000 + 8 * (k % 5),
                                  flags=MEM_FLAG_LOAD, width=4,
                                  active_lanes=32,
                                  line_addresses=(0x10000000 + 32 * k,)))
    writer.close()
    index = ensure_index(path)
    assert index is not None and not index.shardable
    serial = canonical(replay(path, [make_analysis("cachesim")]))
    sharded = canonical(replay_sharded(path, ["cachesim"], jobs=4))
    assert sharded == serial
