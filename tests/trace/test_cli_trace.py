"""CLI surface of the trace subsystem: capture/replay/trace-info/
trace-diff, plus the `trace` → `timeline` rename."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def captured_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "v.rptrace")
    assert main(["capture", "vectoradd", "-o", path]) == 0
    return path


class TestCapture:
    def test_reports_manifest(self, captured_trace, capsys):
        # the fixture already ran capture; run again to see its output
        assert main(["capture", "vectoradd", "-o", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "verified" in out

    def test_unknown_workload_is_cli_error(self, tmp_path, capsys):
        assert main(["capture", "not-a-workload",
                     "-o", str(tmp_path / "x.rptrace")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_unwritable_output_fails_fast(self, capsys):
        assert main(["capture", "vectoradd",
                     "-o", "/no/such/dir/x.rptrace"]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestReplay:
    def test_default_runs_all_analyses(self, captured_trace, capsys):
        assert main(["replay", captured_trace]) == 0
        out = capsys.readouterr().out
        for name in ("cachesim:", "divergence:", "memdiv:", "opcodes:"):
            assert name in out

    def test_analysis_selection(self, captured_trace, capsys):
        assert main(["replay", captured_trace,
                     "--analysis=cachesim,opcodes"]) == 0
        out = capsys.readouterr().out
        assert "cachesim:" in out and "opcodes:" in out
        assert "divergence:" not in out

    def test_unknown_analysis(self, captured_trace, capsys):
        assert main(["replay", captured_trace, "--analysis=nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis" in err

    def test_non_trace_input(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rptrace"
        bogus.write_bytes(b"this is not a trace")
        assert main(["replay", str(bogus)]) == 2
        assert "bad magic" in capsys.readouterr().err

    def test_missing_input(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "gone.rptrace")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestTraceInfo:
    def test_prints_manifest(self, captured_trace, capsys):
        assert main(["trace-info", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "rptrace v1" in out
        assert "instr" in out and "launch" in out
        assert "checksum" in out

    def test_torn_trace(self, captured_trace, tmp_path, capsys):
        data = open(captured_trace, "rb").read()
        torn = tmp_path / "torn.rptrace"
        torn.write_bytes(data[:len(data) // 2])
        assert main(["trace-info", str(torn)]) == 2
        assert "torn" in capsys.readouterr().err


class TestTraceDiff:
    def test_self_diff_exit_zero(self, captured_trace, capsys):
        assert main(["trace-diff", captured_trace, captured_trace]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_traces_exit_one(self, captured_trace, tmp_path,
                                       capsys):
        other = str(tmp_path / "sgemm.rptrace")
        assert main(["capture", "parboil/sgemm(small)",
                     "-o", other]) == 0
        capsys.readouterr()
        assert main(["trace-diff", captured_trace, other]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_missing_operand(self, captured_trace, tmp_path, capsys):
        assert main(["trace-diff", captured_trace,
                     str(tmp_path / "gone.rptrace")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestTimelineRename:
    @pytest.fixture
    def chrome_trace(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"ph": "X", "name": "run", "dur": 1000, "tid": 1},
            ],
        }))
        return str(path)

    def test_timeline_summarizes(self, chrome_trace, capsys):
        assert main(["timeline", chrome_trace]) == 0
        captured = capsys.readouterr()
        assert "1 spans" in captured.out
        assert "deprecated" not in captured.err

    def test_trace_alias_warns_but_works(self, chrome_trace, capsys):
        assert main(["trace", chrome_trace]) == 0
        captured = capsys.readouterr()
        assert "1 spans" in captured.out
        assert "deprecated" in captured.err
        assert "timeline" in captured.err
