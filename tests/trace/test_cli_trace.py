"""CLI surface of the trace subsystem: capture/replay (serial and
`--jobs N` sharded), trace-info/trace-diff, and the `trace` group
(`summary` / `iters` / `info` / `index` / `query`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.trace.index import index_path_for


@pytest.fixture(scope="module")
def captured_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "v.rptrace")
    assert main(["capture", "vectoradd", "-o", path]) == 0
    return path


class TestCapture:
    def test_reports_manifest(self, captured_trace, capsys):
        # the fixture already ran capture; run again to see its output
        assert main(["capture", "vectoradd", "-o", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "verified" in out

    def test_unknown_workload_is_cli_error(self, tmp_path, capsys):
        assert main(["capture", "not-a-workload",
                     "-o", str(tmp_path / "x.rptrace")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_unwritable_output_fails_fast(self, capsys):
        assert main(["capture", "vectoradd",
                     "-o", "/no/such/dir/x.rptrace"]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestReplay:
    def test_default_runs_all_analyses(self, captured_trace, capsys):
        assert main(["replay", captured_trace]) == 0
        out = capsys.readouterr().out
        for name in ("cachesim:", "divergence:", "memdiv:", "opcodes:"):
            assert name in out

    def test_analysis_selection(self, captured_trace, capsys):
        assert main(["replay", captured_trace,
                     "--analysis=cachesim,opcodes"]) == 0
        out = capsys.readouterr().out
        assert "cachesim:" in out and "opcodes:" in out
        assert "divergence:" not in out

    def test_unknown_analysis(self, captured_trace, capsys):
        assert main(["replay", captured_trace, "--analysis=nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis" in err

    def test_non_trace_input(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rptrace"
        bogus.write_bytes(b"this is not a trace")
        assert main(["replay", str(bogus)]) == 2
        assert "bad magic" in capsys.readouterr().err

    def test_missing_input(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "gone.rptrace")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestReplayJobs:
    def test_sharded_stdout_identical_to_serial(self, captured_trace,
                                                capsys):
        assert main(["replay", captured_trace]) == 0
        serial = capsys.readouterr().out
        assert main(["replay", captured_trace, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_flag_shown_in_stderr(self, captured_trace, capsys):
        assert main(["replay", captured_trace, "--jobs", "2"]) == 0
        assert "(jobs 2)" in capsys.readouterr().err


class TestTraceInfo:
    def test_prints_manifest(self, captured_trace, capsys):
        assert main(["trace-info", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "rptrace v1" in out
        assert "instr" in out and "launch" in out
        assert "checksum" in out

    def test_launch_table_from_sidecar(self, captured_trace, capsys):
        assert main(["trace", "info", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "from index sidecar" in out
        assert "vectoradd" in out

    def test_launch_table_scan_fallback(self, captured_trace, tmp_path,
                                        capsys):
        bare = tmp_path / "bare.rptrace"
        bare.write_bytes(open(captured_trace, "rb").read())
        assert main(["trace", "info", str(bare)]) == 0
        out = capsys.readouterr().out
        assert "full scan" in out and "repro trace index" in out


class TestTraceIndex:
    def test_capture_writes_sidecar(self, captured_trace):
        from repro.trace.index import index_path_for

        assert os.path.exists(index_path_for(captured_trace))

    def test_reports_up_to_date(self, captured_trace, capsys):
        assert main(["trace", "index", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "up to date" in out and "shardable" in out

    def test_force_rewrites_identically(self, captured_trace, capsys):
        from repro.trace.index import index_path_for

        sidecar = index_path_for(captured_trace)
        before = open(sidecar, "rb").read()
        assert main(["trace", "index", captured_trace, "--force"]) == 0
        assert "written" in capsys.readouterr().out
        assert open(sidecar, "rb").read() == before

    def test_backfills_missing_sidecar(self, captured_trace, tmp_path,
                                       capsys):
        from repro.trace.index import index_path_for

        bare = str(tmp_path / "bare.rptrace")
        with open(bare, "wb") as handle:
            handle.write(open(captured_trace, "rb").read())
        assert main(["trace", "index", bare]) == 0
        assert "written" in capsys.readouterr().out
        assert open(index_path_for(bare), "rb").read() \
            == open(index_path_for(captured_trace), "rb").read()

    def test_non_trace_input(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rptrace"
        bogus.write_bytes(b"not a trace")
        assert main(["trace", "index", str(bogus)]) == 2
        assert "bad magic" in capsys.readouterr().err


class TestTraceQuery:
    def test_count_all_events(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace, "--count"]) == 0
        out = capsys.readouterr().out
        assert "hits" in out and "(index sidecar)" in out

    def test_class_filter_finds_memory(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace,
                     "--class", "memory", "--kind", "instr",
                     "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "instr" in out and ("LDG" in out or "STG" in out)

    def test_launch_filter_skips(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace,
                     "--launches", "99:", "--count"]) == 0
        out = capsys.readouterr().out
        assert "0 hits" in out

    def test_warp_filter_tags_hits(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace, "--warp", "0",
                     "--kind", "instr", "--limit", "2"]) == 0
        assert " w0 " in capsys.readouterr().out

    def test_scan_fallback_same_hits(self, captured_trace, tmp_path,
                                     capsys):
        bare = str(tmp_path / "bare.rptrace")
        with open(bare, "wb") as handle:
            handle.write(open(captured_trace, "rb").read())
        assert main(["trace", "query", captured_trace, "--class",
                     "memory", "--count"]) == 0
        indexed = capsys.readouterr().out
        assert main(["trace", "query", bare, "--class", "memory",
                     "--count"]) == 0
        scanned = capsys.readouterr().out
        assert indexed.split(" hits")[0] == scanned.split(" hits")[0]

    def test_indexless_query_reports_full_scan(self, captured_trace,
                                               tmp_path, capsys):
        # query never builds an index as a side effect; without a
        # sidecar it must say so in the trace-info wording and point at
        # the command that would keep one
        bare = str(tmp_path / "bare.rptrace")
        with open(bare, "wb") as handle:
            handle.write(open(captured_trace, "rb").read())
        assert main(["trace", "query", bare, "--count"]) == 0
        out = capsys.readouterr().out
        assert "full scan" in out
        assert "no usable .rpti sidecar" in out
        assert "repro trace index" in out
        assert not os.path.exists(index_path_for(bare))

    def test_indexless_query_honors_kind_filters(self, captured_trace,
                                                 tmp_path, capsys):
        bare = str(tmp_path / "bare.rptrace")
        with open(bare, "wb") as handle:
            handle.write(open(captured_trace, "rb").read())
        counts = {}
        for kind in ("instr", "mem", "branch"):
            assert main(["trace", "query", bare, "--kind", kind,
                         "--count"]) == 0
            out = capsys.readouterr().out
            assert "full scan" in out
            counts[kind] = int(out.split(" hits")[0].rsplit(None, 1)[-1])
            assert counts[kind] > 0
            # the same filter on the indexed original matches exactly
            assert main(["trace", "query", captured_trace, "--kind",
                         kind, "--count"]) == 0
            indexed = capsys.readouterr().out
            assert "(index sidecar)" in indexed
            assert int(indexed.split(" hits")[0]
                       .rsplit(None, 1)[-1]) == counts[kind]
        assert len(set(counts.values())) > 1

    def test_bad_class_is_cli_error(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace,
                     "--class", "bogus"]) == 2
        assert "unknown opcode class" in capsys.readouterr().err

    def test_bad_range_is_cli_error(self, captured_trace, capsys):
        assert main(["trace", "query", captured_trace,
                     "--launches", "a:b"]) == 2
        assert "bad launch range" in capsys.readouterr().err

    def test_torn_trace(self, captured_trace, tmp_path, capsys):
        data = open(captured_trace, "rb").read()
        torn = tmp_path / "torn.rptrace"
        torn.write_bytes(data[:len(data) // 2])
        assert main(["trace-info", str(torn)]) == 2
        assert "torn" in capsys.readouterr().err


class TestTraceDiff:
    def test_self_diff_exit_zero(self, captured_trace, capsys):
        assert main(["trace-diff", captured_trace, captured_trace]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_traces_exit_one(self, captured_trace, tmp_path,
                                       capsys):
        other = str(tmp_path / "sgemm.rptrace")
        assert main(["capture", "parboil/sgemm(small)",
                     "-o", other]) == 0
        capsys.readouterr()
        assert main(["trace-diff", captured_trace, other]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_missing_operand(self, captured_trace, tmp_path, capsys):
        assert main(["trace-diff", captured_trace,
                     str(tmp_path / "gone.rptrace")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestTimelineRename:
    @pytest.fixture
    def chrome_trace(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"ph": "X", "name": "run", "dur": 1000, "tid": 1},
            ],
        }))
        return str(path)

    def test_timeline_summarizes(self, chrome_trace, capsys):
        assert main(["timeline", chrome_trace]) == 0
        captured = capsys.readouterr()
        assert "1 spans" in captured.out
        assert "deprecated" not in captured.err


class TestTraceTiming:
    def test_summary_reports_cycles_and_hotspots(self, captured_trace,
                                                 capsys):
        assert main(["trace", "summary", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "kernel vectoradd" in out
        assert "cycles" in out
        assert "hotspots:" in out
        assert "bubbles:" in out
        assert "total:" in out

    def test_summary_policy_changes_schedule(self, captured_trace,
                                             capsys):
        def total(policy):
            assert main(["trace", "summary", captured_trace,
                         "--policy", policy]) == 0
            out = capsys.readouterr().out
            (line,) = [l for l in out.splitlines()
                       if l.startswith("total:")]
            return line

        # different issue order -> (generally) different cycle totals;
        # at minimum both render a total line
        gto, lrr = total("gto"), total("lrr")
        assert gto.startswith("total:") and lrr.startswith("total:")
        assert gto != lrr

    def test_summary_top_limits_hotspots(self, captured_trace, capsys):
        assert main(["trace", "summary", captured_trace,
                     "--top", "1"]) == 0
        out = capsys.readouterr().out
        # exactly one hotspot row (rows are indented under "hotspots:")
        hot = out.split("hotspots:")[1].split("bubbles:")[0]
        assert len([l for l in hot.splitlines() if l.strip()]) == 1

    def test_iters_reports_per_launch_rows(self, captured_trace, capsys):
        assert main(["trace", "iters", captured_trace]) == 0
        out = capsys.readouterr().out
        assert "#0" in out
        assert "vectoradd" in out
        assert "% bubble" in out

    @pytest.mark.parametrize("policy", ["gto", "lrr"])
    def test_iters_accepts_both_policies(self, captured_trace, capsys,
                                         policy):
        assert main(["trace", "iters", captured_trace,
                     "--policy", policy]) == 0
        assert "vectoradd" in capsys.readouterr().out

    def test_bad_policy_rejected_by_argparse(self, captured_trace,
                                             capsys):
        with pytest.raises(SystemExit):
            main(["trace", "summary", captured_trace,
                  "--policy", "fifo"])
        assert "invalid choice" in capsys.readouterr().err

    def test_missing_input_is_cli_error(self, tmp_path, capsys):
        assert main(["trace", "summary",
                     str(tmp_path / "gone.rptrace")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_non_trace_input_is_cli_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rptrace"
        bogus.write_bytes(b"this is not a trace")
        assert main(["trace", "summary", str(bogus)]) == 2
        assert "bad magic" in capsys.readouterr().err
