"""Hypothesis property tests for the ``.rpti`` index sidecar.

The contracts: the index codec round-trips bit-exactly; the sidecar a
:class:`TraceWriter` streams out equals the :func:`build_index`
backfill byte-for-byte; ``open_launch(n)`` returns exactly the events
a full scan attributes to launch *n*; and any truncation or byte flip
of a sidecar raises a clean :class:`TraceFormatError` (a stale or torn
sidecar is then silently rebuilt by :func:`ensure_index`).
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.format import (
    KernelEndEvent,
    LaunchEvent,
    TraceFormatError,
)
from repro.trace.index import (
    build_index,
    decode_index,
    encode_index,
    ensure_index,
    index_path_for,
    read_index,
    write_index,
)
from repro.trace.io import TraceReader, TraceWriter

from tests.trace.test_codec_properties import (
    branches,
    instrs,
    kernel_ends,
    launches,
    mems,
)

bodies = st.lists(st.one_of(instrs, mems, branches), max_size=10)
frames = st.builds(lambda launch, body, end: [launch, *body, end],
                   launches, bodies, kernel_ends)
framed_traces = st.lists(frames, min_size=1, max_size=5)


def _write_trace(events, directory) -> str:
    path = os.path.join(directory, "t.rptrace")
    with TraceWriter(path) as writer:
        for event in events:
            writer.write(event)
    writer.close()
    return path


@given(framed_traces)
@settings(max_examples=40, deadline=None)
def test_index_codec_roundtrip(trace_frames):
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace([e for f in trace_frames for e in f], tmp)
        index = read_index(index_path_for(path))
    assert decode_index(encode_index(index)) == index
    assert index.launches == len(trace_frames)
    assert index.shardable


@given(framed_traces)
@settings(max_examples=40, deadline=None)
def test_writer_sidecar_equals_backfill(trace_frames):
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace([e for f in trace_frames for e in f], tmp)
        with open(index_path_for(path), "rb") as handle:
            sidecar_bytes = handle.read()
        assert encode_index(build_index(path)) == sidecar_bytes


@given(framed_traces, st.data())
@settings(max_examples=60, deadline=None)
def test_any_truncation_raises_trace_format_error(trace_frames, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace([e for f in trace_frames for e in f], tmp)
        index = read_index(index_path_for(path))
    blob = encode_index(index)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(TraceFormatError):
        decode_index(blob[:cut])


@given(framed_traces, st.data())
@settings(max_examples=60, deadline=None)
def test_any_byte_flip_raises_trace_format_error(trace_frames, data):
    # the body CRC plus the header/trailer checks cover every byte
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace([e for f in trace_frames for e in f], tmp)
        index = read_index(index_path_for(path))
    blob = bytearray(encode_index(index))
    where = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    blob[where] ^= data.draw(st.integers(min_value=1, max_value=255))
    with pytest.raises(TraceFormatError):
        decode_index(bytes(blob))


@given(framed_traces, st.data())
@settings(max_examples=40, deadline=None)
def test_open_launch_matches_full_scan(trace_frames, data):
    n = data.draw(st.integers(min_value=0,
                              max_value=len(trace_frames) - 1))
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace([e for f in trace_frames for e in f], tmp)
        # the frame as a full scan sees it: nth LAUNCH through its KEND
        scanned = []
        ordinal = -1
        for event in TraceReader(path).events():
            if isinstance(event, LaunchEvent):
                ordinal += 1
            if ordinal == n:
                scanned.append(event)
                if isinstance(event, KernelEndEvent):
                    break
        seeked = list(TraceReader(path).open_launch(n))
        assert seeked == scanned
        with pytest.raises(TraceFormatError):
            TraceReader(path).open_launch(len(trace_frames))


@given(bodies.filter(bool), framed_traces)
@settings(max_examples=25, deadline=None)
def test_stray_events_disable_sharding(preamble, trace_frames):
    events = list(preamble) + [e for f in trace_frames for e in f]
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_trace(events, tmp)
        index = read_index(index_path_for(path))
        assert index.stray_events == len(preamble)
        assert not index.shardable
        assert index.launches == len(trace_frames)
        # seeking still works even when sharded replay is off the table
        first = list(TraceReader(path).open_launch(0, index))
        assert first == trace_frames[0]


def test_stale_sidecar_rebuilt(tmp_path):
    path = str(tmp_path / "t.rptrace")
    launch = LaunchEvent(kernel="k", grid=(1, 1, 1), block=(32, 1, 1),
                         launch_index=0)
    _write_trace([launch, KernelEndEvent(warp_instructions=7)],
                 str(tmp_path))
    stale = read_index(index_path_for(path))
    # rewrite the trace in place: two frames now, old sidecar kept
    with TraceWriter(path) as writer:
        for k in range(2):
            writer.write(LaunchEvent(kernel="k", grid=(1, 1, 1),
                                     block=(32, 1, 1), launch_index=k))
            writer.write(KernelEndEvent(warp_instructions=9))
    writer.close()
    write_index(stale, index_path_for(path))
    manifest = TraceReader(path).manifest()
    assert not stale.matches(manifest)
    rebuilt = ensure_index(path, write=True)
    assert rebuilt.matches(manifest)
    assert rebuilt.launches == 2
    assert read_index(index_path_for(path)).matches(manifest)
