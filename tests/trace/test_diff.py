"""Trace diff: self-diff is empty, synthetic divergences are located
exactly, and error-injection sidecars from different seeds diverge."""

from __future__ import annotations

import pytest

from repro.trace import TraceWriter, capture_workload, diff_traces
from repro.trace.format import (
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
)


def _write(path, events):
    with TraceWriter(str(path)) as writer:
        for event in events:
            writer.write(event)


BASE = [
    LaunchEvent(kernel="k", grid=(1, 1, 1), block=(32, 1, 1),
                launch_index=0),
    InstrEvent(ins_addr=0x100, opcode=1, lanes=32, width=0),
    BranchEvent(ins_addr=0x110, active=32, taken=4, not_taken=28),
    InstrEvent(ins_addr=0x120, opcode=2, lanes=32, width=0),
    KernelEndEvent(warp_instructions=3),
]


class TestSyntheticDiff:
    def test_self_diff_is_identical(self, tmp_path):
        a = tmp_path / "a.rptrace"
        _write(a, BASE)
        diff = diff_traces(str(a), str(a))
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.deltas == 0
        assert "identical" in diff.report()
        assert "0 deltas" in diff.report()

    def test_first_divergence_index_exact(self, tmp_path):
        a, b = tmp_path / "a.rptrace", tmp_path / "b.rptrace"
        _write(a, BASE)
        changed = list(BASE)
        changed[2] = BranchEvent(ins_addr=0x110, active=32, taken=5,
                                 not_taken=27)
        _write(b, changed)
        diff = diff_traces(str(a), str(b))
        assert not diff.identical
        assert diff.first_divergence == 2
        assert diff.deltas == 1
        assert diff.kernel_frame == ("k", 0)
        assert diff.divergent_pair == (BASE[2], changed[2])
        assert "first divergence at event 2" in diff.report()

    def test_length_mismatch_diverges_at_tail(self, tmp_path):
        a, b = tmp_path / "a.rptrace", tmp_path / "b.rptrace"
        _write(a, BASE)
        _write(b, BASE + [InstrEvent(ins_addr=0x130, opcode=3, lanes=32,
                                     width=0)])
        diff = diff_traces(str(a), str(b))
        assert diff.first_divergence == len(BASE)
        assert diff.events_a == len(BASE)
        assert diff.events_b == len(BASE) + 1
        assert diff.divergent_pair[0] is None

    def test_max_deltas_truncates_count(self, tmp_path):
        a, b = tmp_path / "a.rptrace", tmp_path / "b.rptrace"
        many = [InstrEvent(ins_addr=0x100 + 16 * i, opcode=1, lanes=32,
                           width=0) for i in range(50)]
        other = [InstrEvent(ins_addr=0x100 + 16 * i, opcode=2, lanes=32,
                            width=0) for i in range(50)]
        _write(a, many)
        _write(b, other)
        diff = diff_traces(str(a), str(b), max_deltas=10)
        assert diff.deltas == 10
        assert diff.deltas_truncated
        assert diff.first_divergence == 0
        # totals still reflect the full traces
        assert diff.events_a == diff.events_b == 50
        assert "10+" in diff.report()


class TestCapturedDiff:
    def test_capture_self_diff(self, tmp_path):
        path = str(tmp_path / "v.rptrace")
        capture_workload("vectoradd", path)
        diff = diff_traces(path, path)
        assert diff.identical
        assert diff.events_a > 0

    def test_injection_seeds_diverge(self, tmp_path):
        """Sidecar traces from two different campaign seeds must show a
        nonzero first-divergence point for at least one trial."""
        from repro.handlers.error_injection import ErrorInjectionCampaign
        from repro.workloads import make

        campaigns = {}
        for seed in (7, 8):
            campaign = ErrorInjectionCampaign(
                make("vectoradd"), seed=seed,
                trace_dir=str(tmp_path / f"seed{seed}"))
            campaign.golden_run()
            campaign.profile()
            (tmp_path / f"seed{seed}").mkdir(exist_ok=True)
            for index in range(3):
                campaign.trial(index)
            campaigns[seed] = campaign

        divergences = []
        for index in range(3):
            diff = diff_traces(
                campaigns[7].trial_trace_path(index),
                campaigns[8].trial_trace_path(index))
            if not diff.identical:
                divergences.append(diff)
        assert divergences, \
            "no sidecar divergence across 3 trials of seeds 7 vs 8"
        assert any(d.first_divergence > 0 for d in divergences)
        assert all(d.kernel_frame is not None for d in divergences)
