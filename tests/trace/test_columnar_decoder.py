"""Hypothesis differential suite for the vectorized frame decoder.

The contract: :func:`repro.trace.io.decode_frame_columns` is a drop-in
for the scalar event decoder over one ``LAUNCH .. KEND`` frame slice —
same columns to the bit whenever the vector path runs, the scalar
walk's canonical :class:`TraceFormatError` on corrupt input, and an
``None`` (events-mode) fallback only for values that exceed int64.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro.trace.format import (
    EncoderState,
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
    TraceFormatError,
    decode_varint,
    decode_varint_stream,
    encode_event,
)
from repro.trace.io import (
    TraceReader,
    TraceWriter,
    _columns_scalar,
    _columns_vector,
    _decode_varints,
    decode_frame_columns,
)
from repro.trace.index import ensure_index

U32_MAX = 2**32 - 1
U64_MAX = 2**64 - 1
I64_SAFE = 2**40          # far inside the vector decoder's comfort zone

lane = st.integers(min_value=0, max_value=32)
dim3 = st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))


def launch_events(addr_max):
    return st.builds(LaunchEvent, kernel=st.text(min_size=0, max_size=12),
                     grid=dim3, block=dim3,
                     launch_index=st.integers(0, U32_MAX))


def record_events(addr_max):
    addr = st.integers(min_value=0, max_value=addr_max)
    return st.one_of(
        st.builds(InstrEvent, ins_addr=addr,
                  opcode=st.integers(0, 200), lanes=lane,
                  width=st.integers(0, 16)),
        st.builds(MemEvent, ins_addr=addr,
                  flags=st.integers(0, 7), width=st.integers(0, 16),
                  active_lanes=st.integers(1, 32),
                  line_addresses=st.lists(addr, min_size=0,
                                          max_size=8).map(tuple)),
        st.builds(BranchEvent, ins_addr=addr, active=lane, taken=lane,
                  not_taken=lane),
        st.builds(KernelEndEvent,
                  warp_instructions=st.integers(0, U32_MAX)),
    )


def frame_bytes(launch, records) -> bytes:
    state = EncoderState()
    blob = encode_event(launch, state)
    for event in records:
        blob += encode_event(event, state)
    return blob


def reference_columns(launch, records):
    """Per-kind columns straight from the event objects (ground truth
    independent of both decoder implementations)."""
    cols = {"tags": [], "kend": [], "ia": [], "iop": [], "il": [],
            "iw": [], "ma": [], "mf": [], "mw": [], "mact": [],
            "mn": [], "ml": [], "ba": [], "bact": [], "bt": [], "bn": []}
    for ev in records:
        cols["tags"].append(ev.tag)
        if isinstance(ev, InstrEvent):
            cols["ia"].append(ev.ins_addr)
            cols["iop"].append(ev.opcode)
            cols["il"].append(ev.lanes)
            cols["iw"].append(ev.width)
        elif isinstance(ev, MemEvent):
            cols["ma"].append(ev.ins_addr)
            cols["mf"].append(ev.flags)
            cols["mw"].append(ev.width)
            cols["mact"].append(ev.active_lanes)
            cols["mn"].append(len(ev.line_addresses))
            cols["ml"].extend(ev.line_addresses)
        elif isinstance(ev, BranchEvent):
            cols["ba"].append(ev.ins_addr)
            cols["bact"].append(ev.active)
            cols["bt"].append(ev.taken)
            cols["bn"].append(ev.not_taken)
        else:
            cols["kend"].append(ev.warp_instructions)
    return cols


def assert_frame_matches(frame, launch, records):
    ref = reference_columns(launch, records)
    assert frame.launch == launch
    assert frame.events == len(records) + 1
    got = {"tags": frame.record_tags, "kend": frame.kend_counts,
           "ia": frame.instr_addr, "iop": frame.instr_opcodes,
           "il": frame.instr_lanes, "iw": frame.instr_widths,
           "ma": frame.mem_addr, "mf": frame.mem_flags,
           "mw": frame.mem_width, "mact": frame.mem_active,
           "mn": frame.mem_nlines, "ml": frame.mem_lines,
           "ba": frame.branch_addr, "bact": frame.branch_active,
           "bt": frame.branch_taken, "bn": frame.branch_not_taken}
    for key, expected in ref.items():
        column = got[key]
        assert column.dtype == np.int64, key
        assert column.tolist() == expected, key


@given(launch_events(I64_SAFE), st.lists(record_events(I64_SAFE),
                                         max_size=50))
@settings(max_examples=80)
def test_frame_columns_match_event_ground_truth(launch, records):
    frame = decode_frame_columns(frame_bytes(launch, records))
    assert frame is not None
    assert_frame_matches(frame, launch, records)


@given(launch_events(I64_SAFE), st.lists(record_events(I64_SAFE),
                                         max_size=50))
@settings(max_examples=80)
def test_vector_walk_matches_scalar_walk(launch, records):
    """The two decoder cores agree column-for-column on every
    well-formed frame (and both varint passes agree token-for-token)."""
    blob = frame_bytes(launch, records)
    pos = 0
    tag, pos = decode_varint(blob, pos)
    from repro.trace.format import decode_event

    _, pos = decode_event(tag, blob, pos, EncoderState())
    tokens = decode_varint_stream(blob, pos)
    tok = _decode_varints(blob, pos)
    assert tok is not None
    assert tok.tolist() == tokens
    vec = _columns_vector(tok)
    scal = _columns_scalar(tokens)
    assert vec is not None and scal is not None
    for v, s in zip(vec, scal):
        assert v.tolist() == s.tolist()


@given(st.lists(st.tuples(launch_events(I64_SAFE),
                          st.lists(record_events(I64_SAFE), max_size=12)),
                min_size=2, max_size=4))
@settings(max_examples=30)
def test_delta_chains_reset_at_launch_boundaries(frames):
    """Writer-side address deltas chain across the whole stream but
    reset at LAUNCH, so every frame slice decodes standalone — the
    columns of frame *n* never depend on frames before it."""
    buf = io.BytesIO()
    all_events = []
    with TraceWriter(buf) as writer:
        for launch, records in frames:
            # a KEND closes each frame so the index can slice them
            closed = list(records) + [KernelEndEvent(warp_instructions=0)]
            writer.write(launch)
            for event in closed:
                writer.write(event)
            all_events.append((launch, closed))
    blob = buf.getvalue()
    path_reader = TraceReader(io.BytesIO(blob))
    assert list(path_reader.events())  # container is well-formed
    # slice frames exactly as the index does: LAUNCH..next LAUNCH
    from repro.trace.format import TAG_LAUNCH
    import repro.trace.index as index_mod

    starts = []
    data = blob[index_mod._TRACE_HEADER_SIZE:]
    pos = 0
    state = EncoderState()
    from repro.trace.format import TAG_END, decode_event

    while True:
        at = pos
        tag, pos = decode_varint(data, pos)
        if tag == TAG_END:
            starts.append(at)
            break
        if tag == TAG_LAUNCH:
            starts.append(at)
        _, pos = decode_event(tag, data, pos, state)
    for i, (launch, records) in enumerate(all_events):
        frame = decode_frame_columns(data[starts[i]:starts[i + 1]])
        assert frame is not None
        assert_frame_matches(frame, launch, records)


@given(launch_events(I64_SAFE),
       st.lists(record_events(I64_SAFE), min_size=1, max_size=20),
       st.data())
@settings(max_examples=80)
def test_truncation_matches_scalar_reference(launch, records, data):
    """Any truncation either raises the scalar walk's canonical
    TraceFormatError or decodes an exact record-prefix of the frame —
    never a raw traceback, never divergent vector/scalar behaviour."""
    blob = frame_bytes(launch, records)
    header = frame_bytes(launch, [])
    cut = data.draw(st.integers(min_value=len(header),
                                max_value=len(blob) - 1))
    try:
        frame = decode_frame_columns(blob[:cut])
    except TraceFormatError:
        return
    assert frame is not None
    assert frame.events <= len(records) + 1
    # a successful decode must be a record-prefix of the full frame
    full = decode_frame_columns(blob)
    n = frame.record_tags.size
    assert frame.record_tags.tolist() == full.record_tags.tolist()[:n]


@given(launch_events(I64_SAFE),
       st.lists(record_events(I64_SAFE), min_size=1, max_size=20),
       st.data())
@settings(max_examples=80)
def test_bit_flip_never_tracebacks(launch, records, data):
    blob = bytearray(frame_bytes(launch, records))
    index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    blob[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    try:
        frame = decode_frame_columns(bytes(blob))
    except TraceFormatError:
        return
    assert frame is None or frame.events >= 1


@given(launch_events(U64_MAX),
       st.lists(record_events(U64_MAX), max_size=30))
@settings(max_examples=60)
@example(LaunchEvent(kernel="k", grid=(1, 1, 1), block=(1, 1, 1),
                     launch_index=0),
         [InstrEvent(ins_addr=U64_MAX, opcode=1, lanes=32, width=0),
          InstrEvent(ins_addr=0, opcode=1, lanes=32, width=0)])
def test_full_u64_addresses_decode_exactly_or_fall_back(launch, records):
    """Addresses anywhere in u64: either the columns are still exact,
    or the decoder declines (returns None) so the caller replays the
    frame in events mode — it must never return wrong values."""
    frame = decode_frame_columns(frame_bytes(launch, records))
    if frame is None:
        # legal only when some value really is outside int64
        biggest = max((e.ins_addr for e in records
                       if not isinstance(e, KernelEndEvent)),
                      default=0)
        lines = max((max(e.line_addresses, default=0) for e in records
                     if isinstance(e, MemEvent)), default=0)
        assert max(biggest, lines) >= 2**62
        return
    assert_frame_matches(frame, launch, records)


def test_non_launch_frame_slice_is_rejected():
    blob = frame_bytes(LaunchEvent(kernel="k", grid=(1, 1, 1),
                                   block=(1, 1, 1), launch_index=0),
                       [InstrEvent(ins_addr=8, opcode=1, lanes=32,
                                   width=0)])
    # chop off the leading launch record: the slice starts mid-frame
    state = EncoderState()
    launch_len = len(encode_event(LaunchEvent(kernel="k", grid=(1, 1, 1),
                                              block=(1, 1, 1),
                                              launch_index=0), state))
    with pytest.raises(TraceFormatError, match="launch"):
        decode_frame_columns(blob[launch_len:])


def test_corrupt_frame_bytes_fail_crc_before_decode(tmp_path):
    """The read path (``TraceReader.frames``) rejects flipped frame
    bytes via the index CRC before the columnar decoder ever runs."""
    path = str(tmp_path / "t.rptrace")
    with TraceWriter(path) as writer:
        writer.write(LaunchEvent(kernel="k", grid=(2, 1, 1),
                                 block=(32, 1, 1), launch_index=0))
        for i in range(8):
            writer.write(InstrEvent(ins_addr=8 * i, opcode=1, lanes=32,
                                    width=0))
        writer.write(KernelEndEvent(warp_instructions=8))
    index = ensure_index(path)
    assert index is not None and index.entries
    entry = index.entries[0]
    with open(path, "r+b") as handle:
        handle.seek(entry.offset + entry.length // 2)
        byte = handle.read(1)
        handle.seek(entry.offset + entry.length // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    reader = TraceReader(path)
    with pytest.raises(TraceFormatError, match="checksum"):
        list(reader.frames(index))
