"""Differential suite: columnar replay is bit-identical to streaming.

The contract the vectorized fast path ships on: for every stock
analysis (cachesim, divergence, memdiv, opcodes, timing), feeding
decoded :class:`FrameColumns` batches through ``feed_columns`` produces
byte-for-byte the ``result()`` JSON and ``report()`` text of the
event-at-a-time streaming replay — serially and across shard workers at
any job count.  For timing the identity goes deeper than the public
surface: cycle counts, per-reason stall cycles, bubble records, and
hotspot tables must match to the bit.  CI runs this file under a
no-skip gate.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry import TELEMETRY
from repro.trace.capture import capture_workload
from repro.trace.index import ensure_index
from repro.trace.io import TraceReader, decode_frame_columns
from repro.trace.replay import make_analysis, replay, replay_sharded

WORKLOADS = ("rodinia/pathfinder", "rodinia/lud")
ANALYSES = ("cachesim", "divergence", "memdiv", "opcodes", "timing")
JOB_COUNTS = (1, 2, 4)


def canonical(analyses):
    return [(json.dumps(a.result(), sort_keys=True,
                        separators=(",", ":")),
             a.report())
            for a in analyses]


@pytest.fixture(scope="module", params=WORKLOADS)
def captured(request, tmp_path_factory):
    safe = request.param.replace("/", "_")
    path = str(tmp_path_factory.mktemp("columnar") / f"{safe}.rptrace")
    _, verified, _ = capture_workload(request.param, path)
    assert verified
    return path


@pytest.fixture(scope="module")
def streaming_baseline(captured):
    """Event-at-a-time replay with the columnar fast path disabled —
    the scalar reference every other mode must match byte-for-byte."""
    return canonical(replay(captured,
                            [make_analysis(n) for n in ANALYSES],
                            columnar=False))


def test_every_stock_analysis_is_columnar():
    for name in ANALYSES:
        assert make_analysis(name).columnar, name


def test_every_frame_takes_the_vector_path(captured):
    """The fast path must actually engage on real captures: every frame
    of both workloads decodes to columns (no events-mode fallback)."""
    index = ensure_index(captured)
    assert index is not None and index.shardable
    reader = TraceReader(captured)
    frames = 0
    for entry, data in reader.frames(index):
        frame = decode_frame_columns(data)
        assert frame is not None
        assert frame.events == entry.events
        frames += 1
    assert frames == index.launches > 1


def test_columnar_serial_bit_identical(captured, streaming_baseline):
    columnar = canonical(replay(captured,
                                [make_analysis(n) for n in ANALYSES]))
    assert columnar == streaming_baseline


def test_columnar_replay_counts_every_event(captured, streaming_baseline):
    """Telemetry event accounting survives the batch path: the columnar
    replay reports exactly as many events as the trace manifest."""
    TELEMETRY.enable(reset=True)
    try:
        replay(captured, [make_analysis("opcodes")])
        counters = dict(TELEMETRY.counters)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    manifest = TraceReader(captured).manifest()
    assert counters["trace.replay.events"] == manifest.total_events
    assert counters.get("trace.replay.decode_ns", 0) > 0
    assert counters.get("trace.replay.analyze_ns", 0) > 0


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_sharded_columnar_bit_identical(captured, streaming_baseline,
                                        jobs):
    sharded = canonical(replay_sharded(captured, ANALYSES, jobs=jobs))
    assert sharded == streaming_baseline


def test_timing_schedule_internals_bit_identical(captured):
    """Beyond result()/report(): the full schedule state — cycles,
    busy/bubble split, per-reason stalls, every Bubble record, and the
    per-address hotspot table — matches the streaming scheduler."""
    (stream,) = replay(captured, [make_analysis("timing")],
                       columnar=False)
    (columnar,) = replay(captured, [make_analysis("timing")])
    ref = stream._report()
    got = columnar._report()
    assert got.policy == ref.policy
    assert got.total_cycles == ref.total_cycles
    assert len(got.launches) == len(ref.launches)
    for mine, theirs in zip(got.launches, ref.launches):
        assert mine.kernel == theirs.kernel
        assert mine.launch_index == theirs.launch_index
        assert mine.cycles == theirs.cycles
        sched, sref = mine.schedule, theirs.schedule
        assert sched.busy_cycles == sref.busy_cycles
        assert sched.bubble_cycles == sref.bubble_cycles
        assert sched.issued == sref.issued
        assert dict(sched.stall_cycles) == dict(sref.stall_cycles)
        assert sched.divergent_instrs == sref.divergent_instrs
        assert sched.bubbles == sref.bubbles
        assert sched.hotspots == sref.hotspots
