"""Hypothesis property tests for the ``.rptrace`` codec.

The contracts: every event round-trips bit-exactly through the codec,
varints cover the full unsigned-64 range, and *any* truncation of a
valid trace raises a clean :class:`TraceFormatError` — never a
``struct``/decode traceback.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.trace.format import (
    BranchEvent,
    EncoderState,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
    TraceFormatError,
    decode_event,
    decode_varint,
    encode_event,
    encode_varint,
    unzigzag,
    zigzag,
)
from repro.trace.io import TraceReader, TraceWriter

U32_MAX = 2**32 - 1
U64_MAX = 2**64 - 1

addr = st.integers(min_value=0, max_value=U64_MAX)
small = st.integers(min_value=0, max_value=U32_MAX)
dim3 = st.tuples(small, small, small)

launches = st.builds(
    LaunchEvent,
    kernel=st.text(min_size=0, max_size=40),
    grid=dim3, block=dim3, launch_index=small)
kernel_ends = st.builds(KernelEndEvent, warp_instructions=small)
instrs = st.builds(
    InstrEvent, ins_addr=addr, opcode=small,
    lanes=st.integers(min_value=0, max_value=32),
    width=st.integers(min_value=0, max_value=16))
mems = st.builds(
    MemEvent, ins_addr=addr,
    flags=st.integers(min_value=0, max_value=7),
    width=st.integers(min_value=0, max_value=16),
    active_lanes=st.integers(min_value=1, max_value=32),
    line_addresses=st.lists(addr, min_size=0, max_size=32)
    .map(tuple))
branches = st.builds(
    BranchEvent, ins_addr=addr,
    active=st.integers(min_value=0, max_value=32),
    taken=st.integers(min_value=0, max_value=32),
    not_taken=st.integers(min_value=0, max_value=32))

events = st.one_of(launches, kernel_ends, instrs, mems, branches)


@given(st.integers(min_value=0, max_value=U64_MAX))
@example(0)
@example(1)
@example(127)
@example(128)
@example(U32_MAX)
@example(U64_MAX)
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, pos = decode_varint(encoded, 0)
    assert decoded == value
    assert pos == len(encoded)


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
@example(0)
@example(-1)
@example(2**62)
@example(-(2**62))
def test_zigzag_roundtrip(value):
    mapped = zigzag(value)
    assert mapped >= 0
    assert unzigzag(mapped) == value


@given(st.integers(min_value=0, max_value=2**62))
def test_zigzag_orders_by_magnitude(value):
    # |x| small => mapping small: the property the delta coding relies
    # on for compactness
    assert zigzag(value) <= 2 * value
    assert zigzag(-value) <= 2 * value + 1


@given(st.lists(events, min_size=0, max_size=40))
def test_event_stream_roundtrip(batch):
    enc, dec = EncoderState(), EncoderState()
    blob = b"".join(encode_event(e, enc) for e in batch)
    pos, out = 0, []
    while pos < len(blob):
        tag, pos = decode_varint(blob, pos)
        event, pos = decode_event(tag, blob, pos, dec)
        out.append(event)
    assert out == batch


@given(st.lists(events, min_size=0, max_size=25))
@settings(max_examples=40)
def test_container_roundtrip(batch):
    buf = io.BytesIO()
    with TraceWriter(buf) as writer:
        for event in batch:
            writer.write(event)
    manifest = writer.close()
    assert list(TraceReader(buf).events()) == batch
    assert manifest.total_events == len(batch)


@given(st.lists(events, min_size=1, max_size=12), st.data())
@settings(max_examples=60)
def test_any_truncation_raises_trace_format_error(batch, data):
    buf = io.BytesIO()
    with TraceWriter(buf) as writer:
        for event in batch:
            writer.write(event)
    blob = buf.getvalue()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    truncated = io.BytesIO(blob[:cut])
    with pytest.raises(TraceFormatError):
        list(TraceReader(truncated).events())


@given(st.lists(events, min_size=1, max_size=12), st.data())
@settings(max_examples=60)
def test_single_byte_corruption_never_tracebacks(batch, data):
    """Flipping any one payload byte either still decodes (and then
    fails the checksum) or raises TraceFormatError — nothing else."""
    buf = io.BytesIO()
    with TraceWriter(buf) as writer:
        for event in batch:
            writer.write(event)
    blob = bytearray(buf.getvalue())
    index = data.draw(st.integers(min_value=5, max_value=len(blob) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    blob[index] ^= flip
    reader = TraceReader(io.BytesIO(bytes(blob)))
    try:
        consumed = list(reader.events())
    except TraceFormatError:
        return
    # decoding "succeeded": only acceptable if the flip landed after
    # the checksum (inside the trailer's length field would error) and
    # the stream still matched — i.e. the events are bit-identical
    assert consumed == batch
