"""Tests for CFG construction and SIMT-aware liveness."""

from repro.isa import parse_kernel
from repro.isa.analysis import basic_blocks, compute_liveness, successors
from repro.isa.registers import GPR, Pred


LOOP_KERNEL = parse_kernel("""
.kernel loop
TOP:
        ISETP.GE.S32.AND P0, PT, R0, R4, PT ;
        @P0 BRA `(DONE) ;
        IADD R2, R2, R0 ;
        IADD R0, R0, 1 ;
        BRA `(TOP) ;
DONE:
        MOV R5, R2 ;
        EXIT ;
""")


class TestSuccessors:
    def test_fallthrough(self):
        assert successors(LOOP_KERNEL, 0) == (1,)

    def test_conditional_branch_has_two(self):
        assert set(successors(LOOP_KERNEL, 1)) == {2, 5}

    def test_unconditional_branch_has_one(self):
        assert successors(LOOP_KERNEL, 4) == (0,)

    def test_exit_has_none(self):
        assert successors(LOOP_KERNEL, 6) == ()

    def test_brk_resumes_at_pbk_targets(self):
        kernel = parse_kernel("""
.kernel k
        PBK `(OUT) ;
LOOP:
        @P0 BRK ;
        IADD R0, R0, 1 ;
        BRA `(LOOP) ;
OUT:
        EXIT ;
""")
        assert set(successors(kernel, 1)) == {2, 4}

    def test_sync_resumes_at_divergent_fallthroughs(self):
        kernel = parse_kernel("""
.kernel k
        SSY `(M) ;
        @P0 BRA `(T) ;
        BRA `(M) ;
T:
        IADD R0, R0, 1 ;
M:
        SYNC ;
        EXIT ;
""")
        # SYNC may resume at the fall-through of the predicated branch
        assert 2 in successors(kernel, 4)


class TestLiveness:
    def test_loop_carried_registers_live_at_header(self):
        liveness = compute_liveness(LOOP_KERNEL)
        live_in = liveness.live_gprs_at(0)
        assert GPR(0) in live_in          # induction variable
        assert GPR(2) in live_in          # accumulator
        assert GPR(4) in live_in          # bound

    def test_dead_after_last_use(self):
        liveness = compute_liveness(LOOP_KERNEL)
        # after MOV R5, R2, nothing is live (EXIT uses nothing)
        assert liveness.live_gprs_after(5) == ()

    def test_predicate_liveness(self):
        liveness = compute_liveness(LOOP_KERNEL)
        assert Pred(0) in liveness.live_preds_at(1)
        assert Pred(0) not in liveness.live_preds_at(3)

    def test_predicated_def_does_not_kill(self):
        kernel = parse_kernel("""
.kernel k
        @P0 MOV R2, R3 ;
        STG [R6], R2 ;
        EXIT ;
""")
        liveness = compute_liveness(kernel)
        # R2's old value survives in guard-false lanes: live-in at 0
        assert GPR(2) in liveness.live_gprs_at(0)

    def test_unpredicated_def_kills(self):
        kernel = parse_kernel("""
.kernel k
        MOV R2, R3 ;
        STG [R6], R2 ;
        EXIT ;
""")
        liveness = compute_liveness(kernel)
        assert GPR(2) not in liveness.live_gprs_at(0)

    def test_else_path_values_live_through_then_path(self):
        # SIMT: lanes deferred to the else side carry R7 through the
        # then side, so R7 must be live at then-side sites.
        kernel = parse_kernel("""
.kernel k
        SSY `(M) ;
        @P0 BRA `(T) ;
        BRA `(M) ;
T:
        MOV R7, R3 ;
        IADD R2, R2, 1 ;
M:
        SYNC ;
        STG [R4], R7 ;
        EXIT ;
""")
        liveness = compute_liveness(kernel)
        # at the IADD inside the then-path (index 4), R7 was just
        # redefined for taken lanes, but SYNC may resume untaken lanes
        # whose R7 is the original; R7 is live via the SYNC edge.
        assert GPR(7) in liveness.live_gprs_at(4)


class TestBasicBlocks:
    def test_partitioning(self):
        blocks = basic_blocks(LOOP_KERNEL)
        starts = [b.start for b in blocks]
        assert starts == [0, 2, 5]

    def test_successor_wiring(self):
        blocks = basic_blocks(LOOP_KERNEL)
        by_start = {b.start: b for b in blocks}
        assert set(by_start[0].succ) == {1, 2}
        assert by_start[2].succ == (0,)   # loop back edge
        assert by_start[5].succ == ()     # exit block

    def test_empty_kernel(self):
        from repro.isa.program import SassKernel

        assert basic_blocks(SassKernel("empty", ())) == []
