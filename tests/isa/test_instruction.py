"""Unit tests for the instruction model: class queries and def/use sets."""

from repro.isa import (
    GPR,
    Imm,
    Instruction,
    MemRef,
    MemSpace,
    Opcode,
    Pred,
    PredGuard,
    RZ,
    parse_instruction,
)


def ins(text):
    return parse_instruction(text)


class TestClassQueries:
    def test_store_is_memory_write(self):
        store = ins("@P0 STG [R10], R0 ;")
        assert store.is_memory and store.is_mem_write
        assert not store.is_mem_read
        assert store.mem_space is MemSpace.GLOBAL

    def test_load_is_memory_read(self):
        load = ins("LDG.64 R4, [R8+0x10] ;")
        assert load.is_mem_read and not load.is_mem_write
        assert load.mem_width == 8

    def test_atomic_is_read_and_write(self):
        atom = ins("ATOM.ADD R4, [R6], R8 ;")
        assert atom.is_mem_read and atom.is_mem_write and atom.is_atomic

    def test_local_access_is_spill_or_fill(self):
        assert ins("STL [R1+0x18], R0 ;").is_spill_or_fill
        assert ins("LDL R0, [R1+0x18] ;").is_spill_or_fill
        assert not ins("LDG R0, [R2] ;").is_spill_or_fill

    def test_branch_classes(self):
        cond = ins("@P0 BRA `(L) ;")
        assert cond.is_control_xfer and cond.is_cond_control_xfer
        uncond = ins("BRA `(L) ;")
        assert uncond.is_control_xfer and not uncond.is_cond_control_xfer

    def test_call_class(self):
        assert ins("JCAL 0x7f000000 ;").is_call

    def test_sync_class(self):
        assert ins("BAR 0 ;").is_sync
        assert ins("MEMBAR.GL ;").is_sync

    def test_numeric_class(self):
        assert ins("IADD R0, R1, R2 ;").is_numeric
        assert ins("FFMA R0, R1, R2, R3 ;").is_numeric
        assert not ins("MOV R0, R1 ;").is_numeric

    def test_texture_class(self):
        assert ins("TLD R0, [R2] ;").is_texture


class TestDefUse:
    def test_alu_uses_and_defs(self):
        add = ins("IADD R3, R1, R2 ;")
        assert add.gpr_uses() == (GPR(1), GPR(2))
        assert add.gpr_defs() == (GPR(3),)

    def test_rz_never_appears(self):
        add = ins("IADD R3, RZ, RZ ;")
        assert add.gpr_uses() == ()
        mov = ins("MOV RZ, R5 ;")
        assert mov.gpr_defs() == ()

    def test_global_address_uses_pair(self):
        load = ins("LDG R0, [R8] ;")
        assert load.gpr_uses() == (GPR(8), GPR(9))

    def test_wide_load_defines_pair(self):
        load = ins("LDG.64 R4, [R8] ;")
        assert load.gpr_defs() == (GPR(4), GPR(5))

    def test_wide_store_reads_data_pair(self):
        store = ins("STL.64 [R1+0x60], R10 ;")
        assert GPR(10) in store.gpr_uses() and GPR(11) in store.gpr_uses()
        # local addressing reads only the 32-bit base
        assert GPR(1) in store.gpr_uses() and GPR(2) not in store.gpr_uses()

    def test_wide_multiply_defines_pair(self):
        mul = ins("IMUL.WIDE.U32 R2, R17, 4 ;")
        assert mul.gpr_defs() == (GPR(2), GPR(3))

    def test_guard_is_a_predicate_use(self):
        guarded = ins("@!P2 IADD R0, R0, 1 ;")
        assert Pred(2) in guarded.pred_uses()

    def test_setp_defines_predicate(self):
        setp = ins("ISETP.LT.S32.AND P1, PT, R0, R1, PT ;")
        assert setp.pred_defs() == (Pred(1),)

    def test_shared_access_uses_single_base(self):
        load = ins("LDS R0, [R4+0x8] ;")
        assert load.gpr_uses() == (GPR(4),)


class TestGuard:
    def test_default_guard_unconditional(self):
        assert ins("NOP ;").guard.is_unconditional

    def test_negated_guard(self):
        guarded = ins("@!P0 EXIT ;")
        assert guarded.guard.negated
        assert not guarded.guard.is_unconditional

    def test_with_guard_helper(self):
        base = ins("IADD R0, R0, 1 ;")
        guarded = base.with_guard(PredGuard(Pred(3)))
        assert guarded.guard.pred == Pred(3)

    def test_tagging(self):
        tagged = ins("NOP ;").with_tag("sassi")
        assert tagged.tag == "sassi"
