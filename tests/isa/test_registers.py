"""Unit tests for the register name spaces."""

import pytest

from repro.isa.registers import (
    GPR,
    NUM_GPRS,
    PT,
    Pred,
    RZ,
    SREG_NAMES,
    SpecialReg,
)


class TestGPR:
    def test_rz_is_zero(self):
        assert RZ.is_zero
        assert repr(RZ) == "RZ"

    def test_plain_register_repr(self):
        assert repr(GPR(13)) == "R13"
        assert not GPR(13).is_zero

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GPR(NUM_GPRS)
        with pytest.raises(ValueError):
            GPR(-1)

    def test_pair_of_even_register(self):
        assert GPR(8).pair == GPR(9)

    def test_pair_of_odd_register_rejected(self):
        with pytest.raises(ValueError):
            GPR(9).pair

    def test_ordering(self):
        assert GPR(3) < GPR(4) < RZ


class TestPred:
    def test_pt_is_true(self):
        assert PT.is_true
        assert repr(PT) == "PT"

    def test_plain_predicate(self):
        assert repr(Pred(2)) == "P2"
        assert not Pred(2).is_true

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Pred(8)


class TestSpecialReg:
    def test_known_names_roundtrip(self):
        for index, name in enumerate(SREG_NAMES):
            reg = SpecialReg(name)
            assert reg.encoding_index == index
            assert SpecialReg.from_index(index) == reg

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            SpecialReg("SR_BOGUS")
