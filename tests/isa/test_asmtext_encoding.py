"""Round-trip tests for assembly text and binary encoding, including
property-based tests over generated instructions."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    ConstRef,
    GPR,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
    Opcode,
    Pred,
    PredGuard,
    SpecialReg,
    decode_instruction,
    encode_instruction,
    format_instruction,
    parse_instruction,
    parse_kernel,
)
from repro.isa.asmtext import format_kernel
from repro.isa.encoding import EncodingError
from repro.isa.registers import SREG_NAMES

EXAMPLES = [
    "IADD R1, R1, -0x80",
    "@!P0 LDG.64 R4, [R8+0x10]",
    "STL [R1+0x18], R0",
    "P2R R3, 0x7f",
    "MOV32I R5, 0x640",
    "@P0 IADD R4, RZ, 1",
    "LOP.OR R4, R1, c[0x0][0x24]",
    "ISETP.LT.U32.AND P0, PT, R17, R0, PT",
    "SSY `(merge_2)",
    "@P0 BRA `(then_1)",
    "JCAL 0x7f000000",
    "IMUL.WIDE.U32 R2, R17, 4",
    "IADD.CC R14, R8, R2",
    "IADD.X R15, R9, R3",
    "FFMA R5, R0, R4, R6",
    "MUFU.RCP R3, R2",
    "S2R R0, SR_TID.X",
    "ATOM.ADD.U32 R4, [R6], R8",
    "SHFL.IDX R4, R5, R6",
    "VOTE.BALLOT R4, P0",
    "EXIT",
    "BRK",
    "PBK `(endfor_5)",
    "F2I.TRUNC.S32 R2, R3",
    "FADD.NEGB R2, R3, R4",
    "@!P1 STG.128 [R20], R4",
]


class TestTextRoundtrip:
    @pytest.mark.parametrize("text", EXAMPLES)
    def test_example_roundtrip(self, text):
        instr = parse_instruction(text + " ;")
        assert format_instruction(instr) == text

    def test_kernel_roundtrip(self):
        source = """.kernel k
.param n 0x140 4
TOP:
        IADD R0, R0, 1 ;
        @P0 BRA `(TOP) ;
        EXIT ;
"""
        kernel = parse_kernel(source)
        assert format_kernel(parse_kernel(format_kernel(kernel))) \
            == format_kernel(kernel)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            parse_instruction("FROB R0, R1 ;")

    def test_unknown_modifier_rejected(self):
        with pytest.raises(ValueError):
            parse_instruction("IADD.WAT R0, R1, R2 ;")

    def test_float_immediate_roundtrip(self):
        instr = parse_instruction("FADD R0, R1, 1.5f ;")
        imm = instr.srcs[1]
        assert isinstance(imm, Imm) and imm.is_float
        assert struct.unpack("<f", struct.pack("<I", imm.value))[0] == 1.5
        assert parse_instruction(format_instruction(instr) + ";") == instr


class TestBinaryRoundtrip:
    @pytest.mark.parametrize("text", EXAMPLES)
    def test_example_roundtrip(self, text):
        labels = {"merge_2": 0, "then_1": 1, "endfor_5": 2}
        instr = parse_instruction(text + " ;")
        words = encode_instruction(instr, labels)
        decoded = decode_instruction(words, {v: k for k, v in labels.items()})
        assert decoded == instr

    def test_unknown_label_rejected(self):
        instr = parse_instruction("BRA `(nowhere) ;")
        with pytest.raises(EncodingError):
            encode_instruction(instr)

    def test_opcode_in_low_bits(self):
        # handlers recover the opcode from encoding & 0x1ff (params.py)
        instr = parse_instruction("FFMA R5, R0, R4, R6 ;")
        word0, _ = encode_instruction(instr)
        assert Opcode(word0 & 0x1FF) is Opcode.FFMA

    def test_guard_bits_follow_opcode(self):
        instr = parse_instruction("@!P2 NOP ;")
        word0, _ = encode_instruction(instr)
        assert (word0 >> 9) & 0x7 == 2
        assert (word0 >> 12) & 1 == 1


# ---------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------

_gprs = st.builds(GPR, st.integers(0, 255))
_preds = st.builds(Pred, st.integers(0, 7))
_imms = st.builds(Imm, st.integers(-(2**31), 2**31 - 1))
_consts = st.builds(ConstRef, st.integers(0, 3), st.integers(0, 0xFFFC))
_mems = st.builds(MemRef,
                  st.sampled_from(list(MemSpace)),
                  _gprs,
                  st.integers(-(2**17), 2**17 - 1))
_sregs = st.builds(SpecialReg, st.sampled_from(SREG_NAMES))
_operands = st.one_of(_gprs, _preds, _imms, _consts, _mems, _sregs)

_guards = st.builds(PredGuard, _preds, st.booleans())


_alu_srcs = st.one_of(_gprs, _consts)


@st.composite
def instructions(draw):
    """Well-formed instructions in the shapes the toolchain emits."""
    opcode = draw(st.sampled_from([
        Opcode.IADD, Opcode.IMUL, Opcode.LOP, Opcode.FADD,
        Opcode.FFMA, Opcode.SHL, Opcode.IMNMX,
    ]))
    arity = 3 if opcode is Opcode.FFMA else 2
    dsts = (draw(_gprs),)
    srcs = [draw(_alu_srcs) for _ in range(arity)]
    # the second source may be an immediate (SASS-style)
    if draw(st.booleans()):
        srcs[1] = draw(_imms)
    mods = tuple(draw(st.lists(
        st.sampled_from(["U32", "S32", "CC", "X"]), max_size=2,
        unique=True)))
    return Instruction(opcode=opcode, dsts=dsts, srcs=tuple(srcs),
                       guard=draw(_guards), mods=mods)


@st.composite
def memory_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.LDG, Opcode.LDS, Opcode.LDL]))
    from repro.isa.instruction import OPCODE_SPACE

    ref = MemRef(OPCODE_SPACE[opcode], draw(_gprs),
                 draw(st.integers(-(2**17), 2**17 - 1)))
    mods = draw(st.sampled_from([(), ("64",), ("U8",), ("S16",)]))
    return Instruction(opcode=opcode, dsts=(draw(_gprs),), srcs=(ref,),
                       guard=draw(_guards), mods=mods)


@settings(max_examples=300, deadline=None)
@given(instructions())
def test_encode_decode_roundtrip(instr):
    try:
        words = encode_instruction(instr)
    except EncodingError:
        return  # payload genuinely too large; not a correctness issue
    assert decode_instruction(words) == instr


@settings(max_examples=300, deadline=None)
@given(instructions())
def test_text_roundtrip(instr):
    text = format_instruction(instr)
    assert parse_instruction(text + " ;") == instr


@settings(max_examples=200, deadline=None)
@given(memory_instructions())
def test_memory_text_roundtrip(instr):
    text = format_instruction(instr)
    assert parse_instruction(text + " ;") == instr


@settings(max_examples=200, deadline=None)
@given(memory_instructions())
def test_memory_encode_roundtrip(instr):
    assert decode_instruction(encode_instruction(instr)) == instr
