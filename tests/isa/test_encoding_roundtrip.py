"""Property tests: ``decode(encode(i)) == i`` over the whole ISA.

Hypothesis generates instructions across every opcode, every operand
kind, every modifier, and the full guard space, then checks that the
128-bit encoding (:mod:`repro.isa.encoding`) round-trips exactly.  The
encoding is what SASSI hands to handlers as ``insEncoding`` (Figure 2),
so an asymmetry here would silently corrupt every downstream consumer.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    encode_instruction,
)
from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
    PredGuard,
)
from repro.isa.opcodes import MODIFIERS, Opcode
from repro.isa.registers import GPR, SREG_NAMES, Pred, SpecialReg

#: Deterministic label table shared by encode and decode.
LABEL_NAMES = [f"L{i}" for i in range(8)] + ["loop", ".exit"]
LABEL_IDS = {name: i for i, name in enumerate(LABEL_NAMES)}
LABEL_LOOKUP = {i: name for name, i in LABEL_IDS.items()}

gprs = st.builds(GPR, st.integers(0, 255))
preds = st.builds(Pred, st.integers(0, 7))
#: non-float immediates round-trip over the signed 32-bit range; float
#: immediates store a raw 32-bit pattern (sign lives in the bits)
int_imms = st.builds(Imm, st.integers(-(1 << 31), (1 << 31) - 1),
                     st.just(False))
float_imms = st.builds(Imm, st.integers(0, (1 << 32) - 1), st.just(True))
const_refs = st.builds(ConstRef, st.integers(0, 3),
                       st.integers(0, (1 << 16) - 1))
mem_refs = st.builds(MemRef, st.sampled_from(list(MemSpace)), gprs,
                     st.integers(-(1 << 17), (1 << 17) - 1))
label_refs = st.builds(LabelRef, st.sampled_from(LABEL_NAMES))
sregs = st.builds(SpecialReg, st.sampled_from(SREG_NAMES))

operands = st.one_of(gprs, preds, int_imms, float_imms, const_refs,
                     mem_refs, label_refs, sregs)
guards = st.builds(PredGuard, preds, st.booleans())


@st.composite
def instructions(draw):
    return Instruction(
        opcode=draw(st.sampled_from(list(Opcode))),
        dsts=tuple(draw(st.lists(operands, max_size=2))),
        srcs=tuple(draw(st.lists(operands, max_size=4))),
        guard=draw(guards),
        mods=tuple(draw(st.lists(st.sampled_from(MODIFIERS),
                                 max_size=3))),
    )


@settings(max_examples=400, deadline=None)
@given(instructions())
def test_roundtrip(instr):
    try:
        words = encode_instruction(instr, LABEL_IDS)
    except EncodingError:
        # operand payloads can legitimately overflow the 64-bit body
        # (e.g. four immediates); overflow must be *rejected*, not
        # silently truncated
        assume(False)
    assert decode_instruction(words, LABEL_LOOKUP) == instr


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(Opcode)), guards,
       st.lists(st.sampled_from(MODIFIERS), max_size=3))
def test_roundtrip_every_opcode_bare(opcode, guard, mods):
    """Operand-free round trip touches all 60 opcodes cheaply."""
    instr = Instruction(opcode=opcode, guard=guard, mods=tuple(mods))
    assert decode_instruction(encode_instruction(instr)) == instr


@settings(max_examples=120, deadline=None)
@given(st.one_of(gprs, preds, int_imms, float_imms, const_refs,
                 mem_refs, label_refs, sregs))
def test_roundtrip_single_operand(operand):
    """Each operand kind round-trips alone in a dst and a src slot."""
    as_src = Instruction(Opcode.MOV, srcs=(operand,))
    assert decode_instruction(encode_instruction(as_src, LABEL_IDS),
                              LABEL_LOOKUP) == as_src


def test_too_many_operands_rejected():
    instr = Instruction(Opcode.IADD, dsts=(GPR(0), GPR(1), GPR(2)))
    with pytest.raises(EncodingError):
        encode_instruction(instr)
    instr = Instruction(Opcode.IADD,
                        srcs=(GPR(0), GPR(1), GPR(2), GPR(3), GPR(4)))
    with pytest.raises(EncodingError):
        encode_instruction(instr)


def test_payload_overflow_rejected():
    imm = Imm(123456789)
    instr = Instruction(Opcode.IADD, srcs=(imm, imm, imm))
    with pytest.raises(EncodingError):
        encode_instruction(instr)


def test_unknown_label_rejected():
    instr = Instruction(Opcode.BRA, srcs=(LabelRef("nowhere"),))
    with pytest.raises(EncodingError):
        encode_instruction(instr, LABEL_IDS)
