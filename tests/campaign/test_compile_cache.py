"""Unit tests for the content-addressed compile cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ptxas
from repro.campaign.compile_cache import (
    CompileCache,
    cached_ptxas,
    cached_sassi_compile,
    ir_fingerprint,
    options_fingerprint,
    spec_fingerprint,
)
from repro.isa.asmtext import format_kernel
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sim import Device

from tests.conftest import build_saxpy, build_vecadd, run_vecadd

FLAGS = "-sassi-inst-before=memory -sassi-before-args=mem-info"


class TestFingerprints:
    def test_ir_fingerprint_stable(self):
        assert ir_fingerprint(build_vecadd()) \
            == ir_fingerprint(build_vecadd())

    def test_ir_fingerprint_distinguishes_kernels(self):
        assert ir_fingerprint(build_vecadd()) \
            != ir_fingerprint(build_saxpy())

    def test_spec_fingerprint_covers_fields(self):
        base = spec_from_flags(FLAGS)
        assert spec_fingerprint(base) == spec_fingerprint(base)
        assert spec_fingerprint(base) != spec_fingerprint(None)
        other = spec_from_flags(FLAGS + " -sassi-writeback-regs")
        assert spec_fingerprint(base) != spec_fingerprint(other)
        skip = spec_from_flags(FLAGS + " -sassi-skip-redundant-spills")
        assert spec_fingerprint(base) != spec_fingerprint(skip)

    def test_options_fingerprint(self):
        from repro.backend import CompileOptions

        assert options_fingerprint(None) \
            != options_fingerprint(CompileOptions(peephole=False))


class TestCachedPtxas:
    def test_hit_returns_identical_kernel(self):
        cache = CompileCache()
        first = cached_ptxas(build_vecadd(), cache=cache)
        second = cached_ptxas(build_vecadd(), cache=cache)
        assert first is second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_cached_kernel_matches_direct_compile(self):
        cache = CompileCache()
        cached = cached_ptxas(build_vecadd(), cache=cache)
        direct = ptxas(build_vecadd())
        assert format_kernel(cached) == format_kernel(direct)

    def test_cached_kernel_executes_correctly(self):
        cache = CompileCache()
        cached_ptxas(build_vecadd(), cache=cache)
        kernel = cached_ptxas(build_vecadd(), cache=cache)
        a, b, out, _ = run_vecadd(Device(), kernel)
        assert np.allclose(out, a + b)

    def test_distinct_kernels_distinct_entries(self):
        cache = CompileCache()
        cached_ptxas(build_vecadd(), cache=cache)
        cached_ptxas(build_saxpy(), cache=cache)
        assert len(cache) == 2
        assert cache.stats.misses == 2


class TestCachedSassiCompile:
    def _runtime(self):
        runtime = SassiRuntime(Device(), poison_caller_saved=False)
        runtime.register_before_handler(lambda ctx: None)
        return runtime

    def test_second_compile_hits(self):
        cache = CompileCache()
        spec = spec_from_flags(FLAGS)
        first = cached_sassi_compile(self._runtime(), build_vecadd(),
                                     spec, cache=cache)
        second = cached_sassi_compile(self._runtime(), build_vecadd(),
                                      spec, cache=cache)
        assert cache.stats.hits == 1
        assert format_kernel(first) == format_kernel(second)

    def test_hit_still_records_report(self):
        cache = CompileCache()
        spec = spec_from_flags(FLAGS)
        rt1 = self._runtime()
        cached_sassi_compile(rt1, build_vecadd(), spec, cache=cache)
        rt2 = self._runtime()
        cached_sassi_compile(rt2, build_vecadd(), spec, cache=cache)
        assert len(rt2.reports) == 1
        assert rt2.reports[-1] == rt1.reports[-1]

    def test_cached_instrumented_kernel_runs(self):
        cache = CompileCache()
        spec = spec_from_flags(FLAGS)
        cached_sassi_compile(self._runtime(), build_vecadd(), spec,
                             cache=cache)
        runtime = self._runtime()
        kernel = cached_sassi_compile(runtime, build_vecadd(), spec,
                                      cache=cache)
        a, b, out, stats = run_vecadd(runtime.device, kernel)
        assert np.allclose(out, a + b)
        assert stats.handler_calls > 0

    def test_spec_change_misses(self):
        cache = CompileCache()
        cached_sassi_compile(self._runtime(), build_vecadd(),
                             spec_from_flags(FLAGS), cache=cache)
        cached_sassi_compile(
            self._runtime(), build_vecadd(),
            spec_from_flags(FLAGS + " -sassi-skip-redundant-spills"),
            cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        warm = CompileCache(directory=directory)
        first = cached_ptxas(build_vecadd(), cache=warm)
        cold = CompileCache(directory=directory)
        second = cached_ptxas(build_vecadd(), cache=cold)
        assert cold.stats.hits == 1
        assert cold.stats.misses == 0
        assert format_kernel(first) == format_kernel(second)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        warm = CompileCache(directory=directory)
        cached_ptxas(build_vecadd(), cache=warm)
        for entry in (tmp_path / "cache").iterdir():
            entry.write_bytes(b"not a pickle")
        cold = CompileCache(directory=directory)
        kernel = cached_ptxas(build_vecadd(), cache=cold)
        assert cold.stats.misses == 1
        a, b, out, _ = run_vecadd(Device(), kernel)
        assert np.allclose(out, a + b)

    def test_clear(self):
        cache = CompileCache()
        cached_ptxas(build_vecadd(), cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0

    def test_decode_state_not_pickled(self, tmp_path):
        """Cached kernels must not drag executor decode records along."""
        directory = str(tmp_path / "cache")
        cache = CompileCache(directory=directory)
        kernel = cached_ptxas(build_vecadd(), cache=cache)
        run_vecadd(Device(), kernel)  # attaches _decoded to the instance
        cache.store("again", kernel)
        assert "_decoded" not in kernel.__dict__
        cold = CompileCache(directory=directory)
        reloaded, _ = cold.lookup("again")
        assert "_decoded" not in reloaded.__dict__
