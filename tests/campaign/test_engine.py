"""Unit tests for the campaign fan-out engine."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.campaign.engine import (
    JOBS_ENV,
    TaskError,
    default_jobs,
    map_workloads,
    merge_kernel_stats,
    run_tasks,
    trial_rng,
)
from repro.sim.executor import KernelStats


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"task payload {x} is cursed")
    return x * x


def _interrupt_on_two(x):
    if x == 2:
        raise KeyboardInterrupt
    return x * x


def _exit_on_four(x):
    if x == 4:
        import os

        os._exit(3)  # simulate a worker segfault/OOM kill
    return x * x


class TestRunTasks:
    def test_serial_matches_parallel(self):
        tasks = list(range(20))
        assert run_tasks(_square, tasks, jobs=1) \
            == run_tasks(_square, tasks, jobs=3)

    def test_results_in_task_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_empty_and_single(self):
        assert run_tasks(_square, [], jobs=4) == []
        assert run_tasks(_square, [5], jobs=4) == [25]

    def test_chunksize_does_not_change_results(self):
        tasks = list(range(17))
        assert run_tasks(_square, tasks, jobs=2, chunksize=5) \
            == [x * x for x in tasks]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestDefaultJobsEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "0")
        assert default_jobs() == 1
        monkeypatch.setenv(JOBS_ENV, "-7")
        assert default_jobs() == 1

    def test_malformed_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() == max(1, __import__("os").cpu_count() or 1)

    def test_unset_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == max(1, __import__("os").cpu_count() or 1)


class TestRunTasksFailure:
    def test_task_exception_names_index(self):
        with pytest.raises(TaskError) as info:
            run_tasks(_fail_on_three, list(range(8)), jobs=2)
        assert info.value.task_index == 3
        assert "task 3" in str(info.value)
        assert "cursed" in str(info.value)

    def test_task_exception_names_index_with_chunks(self):
        with pytest.raises(TaskError) as info:
            run_tasks(_fail_on_three, list(range(8)), jobs=2, chunksize=3)
        assert info.value.task_index == 3

    def test_keyboard_interrupt_reraises_promptly(self):
        with pytest.raises((KeyboardInterrupt, TaskError)):
            run_tasks(_interrupt_on_two, list(range(6)), jobs=2)

    def test_worker_crash_raises_task_error(self):
        with pytest.raises(TaskError) as info:
            run_tasks(_exit_on_four, list(range(8)), jobs=2)
        assert info.value.task_index >= 0
        assert "campaign task" in str(info.value)

    def test_serial_path_raises_raw(self):
        with pytest.raises(ValueError):
            run_tasks(_fail_on_three, list(range(8)), jobs=1)

    def test_task_error_pickles(self):
        import pickle

        err = pickle.loads(pickle.dumps(TaskError("boom", 7)))
        assert err.task_index == 7
        assert str(err) == "boom"


class TestTrialRng:
    def test_same_trial_same_stream(self):
        a = trial_rng(2015, 7).integers(0, 1 << 30, size=16)
        b = trial_rng(2015, 7).integers(0, 1 << 30, size=16)
        assert np.array_equal(a, b)

    def test_independent_of_other_trials(self):
        """Trial k's draws must not depend on trials 0..k-1 running."""
        lone = trial_rng(2015, 5).integers(0, 1 << 30, size=4)
        for k in range(5):
            trial_rng(2015, k).integers(0, 1 << 30, size=99)
        again = trial_rng(2015, 5).integers(0, 1 << 30, size=4)
        assert np.array_equal(lone, again)

    def test_distinct_across_trials_and_seeds(self):
        draws = {tuple(trial_rng(seed, k).integers(0, 1 << 30, size=4))
                 for seed in (1, 2) for k in range(8)}
        assert len(draws) == 16


class TestMergeKernelStats:
    def _stats(self, n):
        stats = KernelStats(kernel="k", warp_instructions=n,
                            thread_instructions=32 * n, cycles=2 * n,
                            global_transactions=n, barriers=1,
                            max_stack_depth=n)
        stats.opcode_counts = Counter({"IADD": n, "EXIT": 1})
        return stats

    def test_order_independent(self):
        parts = [self._stats(n) for n in (3, 1, 2)]
        forward = merge_kernel_stats(parts)
        backward = merge_kernel_stats(list(reversed(parts)))
        assert forward == backward

    def test_sums_and_max(self):
        merged = merge_kernel_stats([self._stats(2), self._stats(5)])
        assert merged.warp_instructions == 7
        assert merged.thread_instructions == 224
        assert merged.cycles == 14
        assert merged.barriers == 2
        assert merged.max_stack_depth == 5
        assert merged.opcode_counts == Counter({"IADD": 7, "EXIT": 2})

    def test_empty(self):
        merged = merge_kernel_stats([], kernel="none")
        assert merged.kernel == "none"
        assert merged.warp_instructions == 0


class TestMapWorkloads:
    def test_serial_equals_parallel(self):
        from repro.studies import casestudy3

        names = ["rodinia/nn", "rodinia/pathfinder"]
        serial = map_workloads("repro.studies.casestudy3",
                               "profile_benchmark", names, jobs=1)
        parallel = map_workloads("repro.studies.casestudy3",
                                 "profile_benchmark", names, jobs=2)
        assert [r.benchmark for r in serial] == names
        assert serial == parallel
