"""Disk-layer tests for the compile cache: the ``REPRO_CACHE_DIR``
environment path, writer atomicity, and torn-write tolerance."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.campaign.compile_cache import (
    CACHE_DIR_ENV,
    CompileCache,
    cached_ptxas,
    get_cache,
    reset_cache,
)
from repro.isa.asmtext import format_kernel
from repro.sim import Device

from tests.conftest import build_vecadd, run_vecadd


@pytest.fixture(autouse=True)
def fresh_global_cache():
    reset_cache()
    yield
    reset_cache()


class TestEnvVarDirectory:
    def test_round_trip_across_process_wide_caches(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_cache()
        first = cached_ptxas(build_vecadd())
        assert get_cache().directory == str(tmp_path)
        assert get_cache().stats.misses == 1

        reset_cache()  # a "new process" sharing only the directory
        second = cached_ptxas(build_vecadd())
        assert get_cache().stats.hits == 1
        assert get_cache().stats.misses == 0
        assert format_kernel(first) == format_kernel(second)

        a, b, out, _ = run_vecadd(Device(), second)
        assert np.allclose(out, a + b)

    def test_unset_env_means_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        reset_cache()
        cached_ptxas(build_vecadd())
        assert get_cache().directory is None
        assert list(tmp_path.iterdir()) == []


class TestWriterAtomicity:
    def test_concurrent_writers_leave_one_clean_entry(self, tmp_path):
        directory = str(tmp_path)
        writer_a = CompileCache(directory=directory)
        writer_b = CompileCache(directory=directory)
        # both race to compile + publish the same key
        kernel_a = cached_ptxas(build_vecadd(), cache=writer_a)
        kernel_b = cached_ptxas(build_vecadd(), cache=writer_b)
        assert not [name for name in os.listdir(directory)
                    if name.endswith(".tmp")]
        entries = [name for name in os.listdir(directory)
                   if name.endswith(".pkl")]
        assert len(entries) == 1
        with open(os.path.join(directory, entries[0]), "rb") as handle:
            pickle.load(handle)  # the published entry is complete

        reader = CompileCache(directory=directory)
        kernel_c = cached_ptxas(build_vecadd(), cache=reader)
        assert reader.stats.hits == 1
        assert format_kernel(kernel_a) == format_kernel(kernel_b) \
            == format_kernel(kernel_c)

    def test_interrupted_rename_leaves_no_debris(self, tmp_path,
                                                 monkeypatch):
        directory = str(tmp_path)

        def failing_replace(src, dst):
            raise OSError("simulated crash mid-publish")

        monkeypatch.setattr(os, "replace", failing_replace)
        cache = CompileCache(directory=directory)
        cached_ptxas(build_vecadd(), cache=cache)
        monkeypatch.undo()
        assert os.listdir(directory) == []  # no entry, no temp file

        cold = CompileCache(directory=directory)
        kernel = cached_ptxas(build_vecadd(), cache=cold)
        assert cold.stats.misses == 1  # torn write reads as a clean miss
        a, b, out, _ = run_vecadd(Device(), kernel)
        assert np.allclose(out, a + b)

    def test_inflight_temp_file_is_invisible_to_readers(self, tmp_path):
        directory = str(tmp_path)
        warm = CompileCache(directory=directory)
        cached_ptxas(build_vecadd(), cache=warm)
        # another writer mid-flight: partial temp data in the directory
        with open(os.path.join(directory, "partial.tmp"), "wb") as handle:
            handle.write(b"\x80\x04 partial pickle")
        cold = CompileCache(directory=directory)
        cached_ptxas(build_vecadd(), cache=cold)
        assert cold.stats.hits == 1
        assert cold.stats.misses == 0

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o500)
        if os.access(str(blocked), os.W_OK):
            pytest.skip("running as root; cannot drop write permission")
        cache = CompileCache(directory=str(blocked))
        kernel = cached_ptxas(build_vecadd(), cache=cache)
        again = cached_ptxas(build_vecadd(), cache=cache)
        assert again is kernel  # in-memory layer still works
        blocked.chmod(0o700)
