"""Mid-run re-spec campaigns: flipping an instrumentation-spec delta
halfway through a campaign must not disturb site identity, scheduling
determinism, or the compile cache.

* **site numbering intact** — site ids are the original instruction
  indices (the PR 3 invariant), so a site instrumented under both the
  base spec and the re-specced one carries the same id and observes the
  same per-trial firing count; the re-spec only adds/removes sites, it
  never renumbers the survivors.
* **scheduling-independent** — the same campaign merged serially and
  with ``jobs=4`` is identical (modulo compile-cache statistics, which
  are per-process by construction).
* **compile cache exercised** — a campaign with one delta compiles at
  most two distinct specs; every further trial is a cache hit that
  leaves the runtime's report log identical to a real compile.
"""

from __future__ import annotations

import pytest

from repro.sassi.runtime import (
    DEFAULT_RESPEC_FLAGS,
    SpecDelta,
    _respec_trial,
    respec_campaign,
)
from repro.sassi.spec import InstClass

BASE_FLAGS = ("-sassi-inst-before=memory,branches "
              "-sassi-before-args=mem-info,cond-branch-info")

#: the mid-campaign re-spec: drop branch sites, pick up register writes
DELTA = SpecDelta(before_remove=frozenset({InstClass.BRANCHES}),
                  before_add=frozenset({InstClass.REG_WRITES}))

WORKLOAD = "rodinia/nn"


def test_delta_changes_the_site_set():
    base = _respec_trial((WORKLOAD, BASE_FLAGS, None, 0))
    respec = _respec_trial((WORKLOAD, BASE_FLAGS, DELTA, 1))
    assert base.site_ids != respec.site_ids
    assert set(base.site_ids) - set(respec.site_ids), \
        "delta should drop at least one branch site"
    assert set(respec.site_ids) - set(base.site_ids), \
        "delta should add at least one reg-write site"


def test_site_numbering_intact_across_respec():
    """PR 3 invariant: a site common to both specs keeps its id *and*
    its per-trial firing count — the re-spec neither renumbers nor
    re-routes surviving sites."""
    base = _respec_trial((WORKLOAD, BASE_FLAGS, None, 0))
    respec = _respec_trial((WORKLOAD, BASE_FLAGS, DELTA, 1))
    common = set(base.site_ids) & set(respec.site_ids)
    assert common, "specs must overlap for the invariant to mean anything"
    for site in common:
        assert base.counts.get(site) == respec.counts.get(site), \
            f"site {site}: per-trial count changed across the re-spec"


def test_campaign_merge_obeys_the_switch():
    """Merged counts decompose exactly: base-only sites appear in
    ``switch_at`` trials, respec-only sites in ``trials - switch_at``,
    common sites in all of them."""
    trials, switch_at = 4, 2
    result = respec_campaign(WORKLOAD, flags=BASE_FLAGS, delta=DELTA,
                             trials=trials, switch_at=switch_at)
    base = _respec_trial((WORKLOAD, BASE_FLAGS, None, 0))
    respec = _respec_trial((WORKLOAD, BASE_FLAGS, DELTA, 1))
    assert result.base_site_ids == base.site_ids
    assert result.respec_site_ids == respec.site_ids
    expected: dict = {}
    for site, count in base.counts.items():
        expected[site] = expected.get(site, 0) + switch_at * count
    for site, count in respec.counts.items():
        expected[site] = expected.get(site, 0) + (trials - switch_at) * count
    assert result.merged_counts == dict(sorted(expected.items()))
    assert set(result.common_site_ids()) \
        == set(base.site_ids) & set(respec.site_ids)


@pytest.mark.parametrize("jobs", [4])
def test_campaign_independent_of_jobs(jobs):
    serial = respec_campaign(WORKLOAD, flags=BASE_FLAGS, delta=DELTA,
                             trials=6, jobs=1)
    parallel = respec_campaign(WORKLOAD, flags=BASE_FLAGS, delta=DELTA,
                               trials=6, jobs=jobs)
    # cache statistics are per-process by construction; everything the
    # campaign *measured* must be identical
    assert serial.merged_counts == parallel.merged_counts
    assert serial.base_site_ids == parallel.base_site_ids
    assert serial.respec_site_ids == parallel.respec_site_ids
    assert serial.switch_at == parallel.switch_at
    assert serial.trials == parallel.trials


def test_compile_cache_exercised_by_deltas():
    result = respec_campaign(WORKLOAD, flags=BASE_FLAGS, delta=DELTA,
                             trials=6, jobs=1)
    # every trial either hit or missed; at most one miss per distinct
    # spec (the per-process cache may even have been pre-warmed by an
    # earlier campaign in this test session)
    assert result.compile_hits + result.compile_misses == 6
    assert result.compile_misses <= 2
    assert result.compile_hits >= 4
