"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.kernelir.ptxtext import emit_ptx

from tests.conftest import build_vecadd


@pytest.fixture
def ptx_file(tmp_path):
    path = tmp_path / "vecadd.ptx"
    path.write_text(emit_ptx(build_vecadd()))
    return str(path)


class TestCompile:
    def test_compile_prints_sass(self, ptx_file, capsys):
        assert main(["compile", ptx_file]) == 0
        out = capsys.readouterr().out
        assert ".kernel vecadd" in out and "EXIT" in out

    def test_compile_with_sassi_flags(self, ptx_file, capsys):
        assert main(["compile", ptx_file,
                     "--sassi",
                     "-sassi-inst-before=memory "
                     "-sassi-before-args=mem-info"]) == 0
        captured = capsys.readouterr()
        assert "JCAL" in captured.out
        assert "before-sites" in captured.err

    def test_compile_to_file(self, ptx_file, tmp_path, capsys):
        out_path = tmp_path / "out.sass"
        assert main(["compile", ptx_file, "-o", str(out_path)]) == 0
        assert "STG" in out_path.read_text()

    def test_disasm(self, ptx_file, capsys):
        assert main(["disasm", ptx_file]) == 0
        assert "LDG" in capsys.readouterr().out


class TestWorkloads:
    def test_list(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "parboil/bfs(NY)" in out and "miniFE(CSR)" in out

    def test_run_one(self, capsys):
        assert main(["workloads", "--run", "rodinia/nn"]) == 0
        out = capsys.readouterr().out
        assert "rodinia/nn" in out and "ok" in out


class TestStudy:
    def test_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "table99"])
