"""Tests for the ptxas-analog backend: lowering, divergence control,
register allocation, peephole."""

import pytest

from repro.backend import CompileError, CompileOptions, ptxas
from repro.isa.instruction import LabelRef
from repro.isa.opcodes import Opcode
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR

from tests.conftest import build_divergent_sum, build_vecadd


def opcodes(kernel):
    return [i.opcode for i in kernel.instructions]


class TestLowering:
    def test_vecadd_compiles(self):
        kernel = ptxas(build_vecadd())
        ops = opcodes(kernel)
        assert Opcode.LDG in ops and Opcode.STG in ops
        assert Opcode.EXIT in ops

    def test_params_load_from_constant_bank(self):
        kernel = ptxas(build_vecadd())
        from repro.isa.instruction import ConstRef

        const_reads = [i for i in kernel.instructions
                       if any(isinstance(s, ConstRef) for s in i.srcs)]
        # n (1 word) + three pointers (2 words each)
        assert len(const_reads) >= 7

    def test_pointer_arithmetic_uses_carry_chain(self):
        kernel = ptxas(build_vecadd())
        mods = [i.mods for i in kernel.instructions if i.opcode is Opcode.IADD]
        assert ("CC",) in mods and ("X",) in mods

    def test_register_footprint_reported(self):
        kernel = ptxas(build_vecadd())
        highest = max((r.index for i in kernel.instructions
                       for r in (*i.gpr_defs(), *i.gpr_uses())), default=0)
        assert kernel.num_regs == highest + 1

    def test_stack_pointer_never_allocated(self):
        kernel = ptxas(build_divergent_sum())
        for instr in kernel.instructions:
            assert 1 not in [r.index for r in instr.gpr_defs()], \
                f"R1 written by {instr}"

    def test_labels_valid(self):
        kernel = ptxas(build_divergent_sum())
        kernel.validate()


class TestDivergenceControl:
    def test_if_gets_ssy_and_sync(self):
        kernel = ptxas(build_vecadd())
        ops = opcodes(kernel)
        assert Opcode.SSY in ops and Opcode.SYNC in ops
        # SYNC sits exactly at the SSY target
        ssy = kernel.instructions[ops.index(Opcode.SSY)]
        target = next(s for s in ssy.srcs if isinstance(s, LabelRef))
        assert kernel.instructions[
            kernel.label_target(target.name)].opcode is Opcode.SYNC

    def test_loop_gets_pbk_and_brk(self):
        kernel = ptxas(build_divergent_sum())
        ops = opcodes(kernel)
        assert Opcode.PBK in ops and Opcode.BRK in ops

    def test_pbk_in_preheader_not_in_loop(self):
        kernel = ptxas(build_divergent_sum())
        ops = opcodes(kernel)
        pbk_index = ops.index(Opcode.PBK)
        # the PBK must be before the loop header test (single push)
        brk_index = ops.index(Opcode.BRK)
        assert pbk_index < brk_index

    def test_break_lowered_to_brk_not_bra(self):
        b = KernelBuilder("k", [("n", Type.S32)])
        with b.for_range(0, b.param("n")) as i:
            with b.if_(b.eq(i, 3)):
                b.break_()
        kernel = ptxas(b.finish())
        # two BRKs: the header exit test and the explicit break
        assert opcodes(kernel).count(Opcode.BRK) == 2

    def test_no_ssy_when_reconvergence_is_loop_exit(self):
        b = KernelBuilder("k", [("n", Type.S32)])
        with b.for_range(0, b.param("n")) as i:
            with b.if_(b.eq(i, 3)):
                b.break_()
        kernel = ptxas(b.finish())
        assert Opcode.SSY not in opcodes(kernel)

    def test_nested_ifs_get_nested_ssy(self):
        b = KernelBuilder("k", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.lt(i, b.param("n"))):
            with b.if_(b.eq(b.and_(i, 1), 0)):
                b.store(b.gep(b.param("out"), i, 4), i)
        kernel = ptxas(b.finish())
        assert opcodes(kernel).count(Opcode.SSY) == 2
        assert opcodes(kernel).count(Opcode.SYNC) == 2


class TestPeephole:
    def test_branch_to_next_removed(self):
        kernel = ptxas(build_vecadd())
        for index, instr in enumerate(kernel.instructions):
            if instr.opcode is Opcode.BRA and instr.guard.is_unconditional:
                target = next(s for s in instr.srcs
                              if isinstance(s, LabelRef))
                assert kernel.label_target(target.name) != index + 1

    def test_peephole_can_be_disabled(self):
        fast = ptxas(build_vecadd())
        slow = ptxas(build_vecadd(), CompileOptions(peephole=False))
        assert len(slow.instructions) >= len(fast.instructions)


class TestFinalPass:
    def test_final_pass_runs_last(self):
        seen = {}

        def final(kernel):
            seen["len"] = len(kernel.instructions)
            return kernel

        kernel = ptxas(build_vecadd(), CompileOptions(final_pass=final))
        assert seen["len"] == len(kernel.instructions)

    def test_final_pass_output_validated(self):
        from dataclasses import replace
        from repro.isa.instruction import Instruction

        def bad(kernel):
            broken = Instruction(Opcode.BRA,
                                 srcs=(LabelRef("missing"),))
            return replace(kernel,
                           instructions=kernel.instructions + (broken,))

        with pytest.raises(ValueError):
            ptxas(build_vecadd(), CompileOptions(final_pass=bad))


class TestErrors:
    def test_unsupported_construct_raises_compile_error(self):
        b = KernelBuilder("k", [("out", PTR)])
        # 64-bit subtract is documented as unsupported
        p = b.param("out")
        q = b.sub(p, p)
        b.store(b.param("out"), b.cvt(q, Type.U32))
        with pytest.raises(CompileError):
            ptxas(b.finish())
