"""Exporters (Chrome trace, JSONL, text summary) and the run manifest."""

from __future__ import annotations

import json

import pytest

from repro.backend import ptxas
from repro.sim import Device
from repro.telemetry import (
    TELEMETRY,
    chrome_trace,
    jsonl_events,
    render_summary,
    run_manifest,
    span,
    write_chrome_trace,
    write_jsonl,
)

from tests.conftest import build_vecadd, run_vecadd


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


@pytest.fixture
def populated():
    TELEMETRY.enable(reset=True)
    kernel = ptxas(build_vecadd())
    with span("run", workload="vecadd"):
        run_vecadd(Device(), kernel)
    TELEMETRY.disable()
    return TELEMETRY


class TestChromeTrace:
    def test_document_round_trips_through_json(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), populated)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_span_events_are_normalized_and_complete(self, populated):
        doc = chrome_trace(populated)
        xevents = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in xevents}
        assert {"run", "launch"} <= names
        for event in xevents:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] == "repro"
        run_event = next(e for e in xevents if e["name"] == "run")
        assert run_event["ts"] == 0  # normalized to its root's start
        assert run_event["args"]["workload"] == "vecadd"

    def test_counter_event_carries_totals(self, populated):
        doc = chrome_trace(populated)
        counter_event = next(e for e in doc["traceEvents"]
                             if e["ph"] == "C")
        assert counter_event["args"] \
            == {k: int(v) for k, v in populated.counters.items()}

    def test_metadata_is_the_manifest(self, populated):
        manifest = run_manifest(seed=7, extra={"command": "test"})
        doc = chrome_trace(populated, manifest=manifest)
        assert doc["metadata"]["seed"] == 7
        assert doc["metadata"]["command"] == "test"


class TestJsonl:
    def test_every_line_parses(self, populated, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), populated)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "manifest"
        kinds = {record["type"] for record in records}
        assert {"manifest", "span", "counter"} <= kinds

    def test_counter_records_match_totals(self, populated):
        records = jsonl_events(populated)
        counters = {r["name"]: r["value"] for r in records
                    if r["type"] == "counter"}
        assert counters == {k: int(v)
                            for k, v in populated.counters.items()}


class TestSummary:
    def test_lists_spans_and_counters(self, populated):
        text = render_summary(populated)
        assert "spans (count / total s / self s):" in text
        assert "run" in text and "launch" in text
        assert "instr.float" in text

    def test_counter_lines_are_parseable(self, populated):
        text = render_summary(populated)
        parsed = {}
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[0].startswith(("instr.", "sassi.",
                                                        "divergence.")):
                parsed[parts[0]] = int(parts[1])
        for key, value in populated.counters.items():
            if key.startswith("instr."):
                assert parsed[key] == value

    def test_empty_telemetry_says_so(self):
        assert "no data" in render_summary(TELEMETRY)


class TestManifest:
    def test_fields(self):
        manifest = run_manifest(seed=2015, spec_fingerprint="abc")
        assert manifest["schema"] == 1
        assert manifest["seed"] == 2015
        assert manifest["spec_fingerprint"] == "abc"
        assert isinstance(manifest["python"], str)
        assert isinstance(manifest["argv"], list)
        assert manifest["git_rev"] is None \
            or len(manifest["git_rev"]) == 40
        json.dumps(manifest)  # must be JSON-serializable
