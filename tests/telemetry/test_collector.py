"""Telemetry core: hot-loop counters, spans, and cross-process merges."""

from __future__ import annotations

import pickle
from collections import Counter

import numpy as np
import pytest

from repro.backend import ptxas
from repro.sim import Device
from repro.telemetry import OPCLASS_KEY, TELEMETRY, span
from repro.workloads import make

from tests.conftest import build_vecadd, run_vecadd


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


class TestDispatchCounters:
    """The acceptance criterion: per-opcode-class counter totals equal
    the executor's KernelStats ground truth, exactly."""

    @pytest.mark.parametrize("name", ["vectoradd", "rodinia/nn",
                                      "rodinia/pathfinder"])
    def test_counters_match_kernel_stats(self, name):
        workload = make(name)
        device = Device()
        kernel = ptxas(workload.build_ir())
        TELEMETRY.enable(reset=True)
        output = workload.execute(device, kernel)
        TELEMETRY.disable()
        assert workload.verify(output)

        expected = Counter()
        for stats in workload.last_trace.launches:
            for opcode, count in stats.opcode_counts.items():
                expected[OPCLASS_KEY[opcode]] += count
        observed = {key: value for key, value in TELEMETRY.counters.items()
                    if key.startswith("instr.")}
        assert observed == dict(expected)
        assert sum(observed.values()) \
            == workload.last_trace.warp_instructions

    def test_sassi_counters_cover_injected_instructions(self):
        from repro.sassi import SassiRuntime, spec_from_flags

        runtime = SassiRuntime(Device(), poison_caller_saved=False)
        runtime.register_before_handler(lambda ctx: None)
        kernel = runtime.compile(
            build_vecadd(),
            spec_from_flags("-sassi-inst-before=memory "
                            "-sassi-before-args=mem-info"))
        TELEMETRY.enable(reset=True)
        a, b, out, stats = run_vecadd(runtime.device, kernel)
        TELEMETRY.disable()
        assert np.allclose(out, a + b)
        sassi_total = sum(value for key, value in TELEMETRY.counters.items()
                          if key.startswith("sassi."))
        assert sassi_total == stats.sassi_warp_instructions
        assert TELEMETRY.counters.get("sassi.spill", 0) > 0
        assert TELEMETRY.counters.get("sassi.fill", 0) > 0
        assert TELEMETRY.counters.get("sassi.param_marshal", 0) > 0
        assert TELEMETRY.counters[
            "handler.invocations.sassi_before_handler"] > 0

    def test_disabled_records_nothing_and_output_is_identical(self):
        kernel_off = ptxas(build_vecadd())
        a, b, off_out, off_stats = run_vecadd(Device(), kernel_off)
        assert TELEMETRY.counters == {}

        TELEMETRY.enable(reset=True)
        kernel_on = ptxas(build_vecadd())
        _, _, on_out, on_stats = run_vecadd(Device(), kernel_on)
        TELEMETRY.disable()
        assert TELEMETRY.counters  # telemetry actually recorded this time
        assert off_out.tobytes() == on_out.tobytes()
        assert off_stats.warp_instructions == on_stats.warp_instructions
        assert off_stats.opcode_counts == on_stats.opcode_counts


class TestSpans:
    def test_nesting_and_counter_deltas(self):
        TELEMETRY.enable(reset=True)
        with span("outer", tag="x"):
            TELEMETRY.incr("custom.a", 2)
            with span("inner"):
                TELEMETRY.incr("custom.a", 3)
                TELEMETRY.add_time("t", 0.5)
        TELEMETRY.disable()
        assert len(TELEMETRY.roots) == 1
        outer = TELEMETRY.roots[0]
        assert outer.name == "outer" and outer.meta == {"tag": "x"}
        assert outer.counters["custom.a"] == 5  # children included
        (inner,) = outer.children
        assert inner.counters["custom.a"] == 3
        assert inner.timers["t"] == pytest.approx(0.5)
        assert outer.wall >= inner.wall >= 0.0
        assert [node.name for node in outer.walk()] == ["outer", "inner"]

    def test_disabled_span_is_a_noop(self):
        with span("ghost") as node:
            assert node is None
        assert TELEMETRY.roots == []
        assert TELEMETRY._stack == []

    def test_launch_span_recorded_per_kernel_launch(self):
        TELEMETRY.enable(reset=True)
        kernel = ptxas(build_vecadd())
        run_vecadd(Device(), kernel)
        TELEMETRY.disable()
        assert [root.name for root in TELEMETRY.roots] == ["launch"]
        assert TELEMETRY.roots[0].meta["kernel"] == "vecadd"
        assert sum(value for key, value
                   in TELEMETRY.roots[0].counters.items()
                   if key.startswith("instr.")) > 0


class TestSnapshotMerge:
    def test_delta_since_then_merge_reproduces_totals(self):
        TELEMETRY.enable(reset=True)
        TELEMETRY.incr("pre.existing", 100)  # must not leak into delta
        mark = TELEMETRY.mark()
        with span("work", workload="w"):
            TELEMETRY.incr("k", 7)
            TELEMETRY.add_time("t", 1.5)
        snapshot = TELEMETRY.delta_since(mark)
        assert snapshot.counters == {"k": 7}
        assert snapshot.timers == {"t": 1.5}
        assert [node.name for node in snapshot.spans] == ["work"]

        snapshot = pickle.loads(pickle.dumps(snapshot))  # worker transport
        TELEMETRY.enable(reset=True)
        TELEMETRY.merge_snapshot(snapshot)
        TELEMETRY.disable()
        assert TELEMETRY.counters == {"k": 7}
        assert [root.name for root in TELEMETRY.roots] == ["work"]

    def test_merge_under_open_span_attaches_as_child(self):
        TELEMETRY.enable(reset=True)
        mark = TELEMETRY.mark()
        with span("task"):
            TELEMETRY.incr("k", 1)
        snapshot = TELEMETRY.delta_since(mark)
        TELEMETRY.reset()
        with span("campaign"):
            TELEMETRY.merge_snapshot(snapshot)
        TELEMETRY.disable()
        (campaign,) = TELEMETRY.roots
        assert [child.name for child in campaign.children] == ["task"]


def _span_shape(node):
    """Structure + deterministic payload (no wall-clock)."""
    return (node.name, tuple(sorted(node.meta.items())),
            tuple(sorted(node.counters.items())),
            tuple(_span_shape(child) for child in node.children))


class TestSerialParallelEquivalence:
    """Span trees and counter totals from ``--jobs 4`` must merge to
    exactly the serial result."""

    NAMES = ["rodinia/nn", "rodinia/pathfinder", "rodinia/hotspot",
             "parboil/sgemm(small)"]

    def _run(self, jobs):
        from repro.studies.casestudy3 import run

        TELEMETRY.enable(reset=True)
        rows = run(self.NAMES, jobs=jobs, use_cache=False)
        TELEMETRY.disable()
        counters = dict(TELEMETRY.counters)
        shapes = [_span_shape(root) for root in TELEMETRY.roots]
        return rows, counters, shapes

    def test_jobs4_equals_serial(self):
        serial_rows, serial_counters, serial_shapes = self._run(jobs=1)
        parallel_rows, parallel_counters, parallel_shapes = \
            self._run(jobs=4)
        assert parallel_counters == serial_counters
        assert parallel_shapes == serial_shapes
        assert [row.benchmark for row in parallel_rows] \
            == [row.benchmark for row in serial_rows]
