"""Overhead attribution: bucket accounting and the overhead-study
cross-check."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    BUCKETS,
    TELEMETRY,
    attribute_workload,
    cross_check_instruction_ratio,
    split_wall,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


class TestSplitWall:
    def test_buckets_sum_exactly(self):
        buckets = split_wall(
            2.0, 0.5,
            {"sassi.spill": 30, "sassi.fill": 30,
             "sassi.save_restore": 40, "sassi.param_marshal": 100},
            baseline_instructions=100)
        assert set(buckets) == set(BUCKETS)
        assert sum(buckets.values()) == pytest.approx(2.0, abs=1e-12)
        assert buckets["handler_body"] == 0.5
        # equal instruction weights -> equal shares of the remainder
        assert buckets["baseline"] == pytest.approx(0.5)
        assert buckets["save_restore"] == pytest.approx(0.5)
        assert buckets["param_marshal"] == pytest.approx(0.5)

    def test_handler_body_clamped_to_wall(self):
        buckets = split_wall(1.0, 5.0, {}, baseline_instructions=10)
        assert buckets["handler_body"] == 1.0
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_no_counters_degrades_to_all_baseline(self):
        buckets = split_wall(1.0, 0.0, {}, baseline_instructions=0)
        assert buckets["baseline"] == pytest.approx(1.0)


class TestAttributeWorkload:
    def test_buckets_sum_to_instrumented_wall_within_1pct(self):
        report = attribute_workload("rodinia/nn", case="memory")
        total = sum(report.wall_buckets.values())
        assert total == pytest.approx(report.instrumented_wall,
                                      rel=0.01)
        assert all(value >= 0 for value in report.wall_buckets.values())
        assert report.slowdown > 1.0
        assert report.instruction_buckets["save_restore"] > 0
        assert report.instruction_buckets["param_marshal"] > 0

    def test_render_mentions_every_bucket(self):
        report = attribute_workload("rodinia/nn", case="memory")
        text = report.render()
        for bucket in BUCKETS:
            assert bucket in text
        assert "rodinia/nn" in text

    def test_cross_checks_against_overhead_study(self):
        """The attribution's instruction ratio must agree with the
        independently measured I column of studies.overhead."""
        from repro.studies.overhead import measure_benchmark

        report = attribute_workload("rodinia/nn", case="memory")
        row = measure_benchmark("rodinia/nn", cases=("memory",),
                                use_cache=False)
        observed = row.cells["memory"].instruction_ratio
        assert cross_check_instruction_ratio(report, observed) < 0.01

    def test_leaves_telemetry_disabled_when_it_was(self):
        assert not TELEMETRY.enabled
        attribute_workload("rodinia/nn", case="memory")
        assert not TELEMETRY.enabled


class TestSampledAttribution:
    """Bucket accounting must stay exact when sites are sampled."""

    def test_sampled_buckets_still_sum_exactly(self):
        from repro.sassi.runtime import AdaptiveController, EveryNth

        controller = AdaptiveController(sampling=EveryNth(4))
        report = attribute_workload("rodinia/nn", case="memory",
                                    controller=controller)
        assert set(report.wall_buckets) == set(BUCKETS)
        total = sum(report.wall_buckets.values())
        assert total == pytest.approx(report.instrumented_wall, rel=0.01)
        # skipped firings execute nothing: zero wall, nonzero instrs
        assert report.wall_buckets["sampled_skipped"] == 0.0
        assert report.instruction_buckets["sampled_skipped"] > 0

    def test_skipped_plus_executed_equals_full_rate(self):
        """The ``sampled_skipped`` fix: instruction-level accounting
        must not lose the skipped firings.  Executed injected
        instructions plus the skipped bucket equal the full-rate run's
        injected instructions exactly."""
        from repro.sassi.runtime import AdaptiveController, EveryNth

        def injected(report):
            return (report.instruction_buckets["save_restore"]
                    + report.instruction_buckets["param_marshal"])

        full = attribute_workload("rodinia/nn", case="memory")
        controller = AdaptiveController(sampling=EveryNth(4))
        sampled = attribute_workload("rodinia/nn", case="memory",
                                     controller=controller)
        assert full.instruction_buckets["sampled_skipped"] == 0
        assert injected(sampled) \
            + sampled.instruction_buckets["sampled_skipped"] \
            == injected(full)

    def test_full_rate_controller_changes_nothing(self):
        from repro.sassi.runtime import AdaptiveController

        plain = attribute_workload("rodinia/nn", case="memory")
        controlled = attribute_workload(
            "rodinia/nn", case="memory",
            controller=AdaptiveController())
        assert plain.instruction_buckets == controlled.instruction_buckets
