"""The ``repro serve`` / ``repro submit`` CLI pair."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import cli
from repro.server.service import ServerConfig, start_in_thread


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = start_in_thread(ServerConfig(
        shards=1, workers=2, queue_depth=8,
        artifact_dir=str(tmp_path_factory.mktemp("artifacts"))))
    yield handle
    handle.stop()


def submit(server, *extra):
    host, port = server.address
    return ["submit", *extra, "--host", host, "--port", str(port)]


class TestSubmitCli:
    def test_bench(self, server, capsys):
        assert cli.main(submit(server, "bench", "--spin-ms", "1",
                               "--tag", "cli")) == 0
        out = capsys.readouterr().out
        assert "bench done in" in out

    def test_campaign_prints_outcomes(self, server, capsys):
        assert cli.main(submit(server, "campaign", "--workload",
                               "vectoradd", "--injections", "2",
                               "--seed", "4")) == 0
        out = capsys.readouterr().out
        assert "campaign done in" in out
        assert ":" in out.splitlines()[-1]  # an outcome line

    def test_json_output_is_the_result_record(self, server, capsys):
        assert cli.main(submit(server, "bench", "--spin-ms", "0",
                               "--tag", "js", "--json")) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"
        assert record["result"]["tag"] == "js"

    def test_capture_then_replay_artifact(self, server, capsys):
        assert cli.main(submit(server, "capture", "--workload",
                               "vectoradd", "--json")) == 0
        captured = json.loads(capsys.readouterr().out)
        assert cli.main(submit(server, "replay", "--artifact",
                               captured["job_id"], "--analysis",
                               "opcodes,timing")) == 0
        out = capsys.readouterr().out
        assert "[timing]" in out

    def test_no_wait_prints_job_id(self, server, capsys):
        assert cli.main(submit(server, "bench", "--spin-ms", "0",
                               "--no-wait")) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("j")

    def test_bad_job_is_cli_error(self, server, capsys):
        code = cli.main(submit(server, "campaign", "--workload",
                               "not-a-workload"))
        assert code == 2
        assert "repro:" in capsys.readouterr().err

    def test_unreachable_server_is_cli_error(self, capsys):
        code = cli.main(["submit", "bench", "--port", "1",
                         "--host", "127.0.0.1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro:" in err


class TestServeCli:
    def test_serve_announces_and_serves(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "1",
             "--artifact-dir", str(tmp_path / "artifacts")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ, "PYTHONUNBUFFERED": "1"})
        try:
            line = proc.stdout.readline()
            assert "repro-server listening on" in line
            host, port = line.strip().rsplit(" ", 1)[-1].split(":")

            from repro.server.client import ServerClient

            client = ServerClient(host, int(port), timeout=60)
            record = client.submit_and_wait("bench", spin_ms=1,
                                            tag="subproc")
            assert record["result"]["tag"] == "subproc"
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
