"""Per-tenant compile-cache namespace isolation (and the shared opt-in)."""

from __future__ import annotations

import numpy as np

from repro.campaign.compile_cache import CompileCache, cached_ptxas, \
    cached_sassi_compile
from repro.isa.asmtext import format_kernel
from repro.sassi import SassiRuntime, spec_from_flags
from repro.server.tenancy import (
    DEFAULT_TENANT,
    SHARED_NAMESPACE,
    NamespacedCache,
    namespaced_cache,
    tenant_namespace,
)
from repro.sim import Device

from tests.conftest import build_vecadd, run_vecadd

FLAGS = "-sassi-inst-before=memory -sassi-before-args=mem-info"


class TestTenantNamespace:
    def test_default_tenant(self):
        assert tenant_namespace(None) == f"tenant:{DEFAULT_TENANT}"

    def test_named_tenant(self):
        assert tenant_namespace("acme") == "tenant:acme"

    def test_share_opt_in_wins(self):
        assert tenant_namespace("acme", share_cache=True) \
            == SHARED_NAMESPACE
        assert tenant_namespace("zenith", share_cache=True) \
            == SHARED_NAMESPACE


class TestNamespaceIsolation:
    def test_identical_ir_separate_entries(self):
        """Two tenants compiling the same IR must not share entries."""
        base = CompileCache()
        t1 = NamespacedCache(base, tenant_namespace("alice"))
        t2 = NamespacedCache(base, tenant_namespace("bob"))
        cached_ptxas(build_vecadd(), cache=t1)
        cached_ptxas(build_vecadd(), cache=t2)
        # both missed: bob never sees alice's compile
        assert t1.stats.misses == 1 and t1.stats.hits == 0
        assert t2.stats.misses == 1 and t2.stats.hits == 0
        assert len(base) == 2
        assert len(t1) == 1 and len(t2) == 1

    def test_second_lookup_same_tenant_hits(self):
        base = CompileCache()
        t1 = NamespacedCache(base, tenant_namespace("alice"))
        first = cached_ptxas(build_vecadd(), cache=t1)
        second = cached_ptxas(build_vecadd(), cache=t1)
        assert first is second
        assert t1.stats.hits == 1

    def test_shared_namespace_deduplicates(self):
        """Tenants that opt into sharing compile once between them."""
        base = CompileCache()
        s1 = NamespacedCache(base, tenant_namespace("alice", True))
        s2 = NamespacedCache(base, tenant_namespace("bob", True))
        first = cached_ptxas(build_vecadd(), cache=s1)
        second = cached_ptxas(build_vecadd(), cache=s2)
        assert first is second
        assert s1.stats.misses == 1
        assert s2.stats.hits == 1 and s2.stats.misses == 0
        assert len(base) == 1

    def test_instrumented_compiles_isolated_too(self):
        base = CompileCache()
        spec = spec_from_flags(FLAGS)

        def runtime():
            rt = SassiRuntime(Device(), poison_caller_saved=False)
            rt.register_before_handler(lambda ctx: None)
            return rt

        t1 = NamespacedCache(base, tenant_namespace("alice"))
        t2 = NamespacedCache(base, tenant_namespace("bob"))
        k1 = cached_sassi_compile(runtime(), build_vecadd(), spec,
                                  cache=t1)
        k2 = cached_sassi_compile(runtime(), build_vecadd(), spec,
                                  cache=t2)
        assert t2.stats.hits == 0 and t2.stats.misses == 1
        assert format_kernel(k1) == format_kernel(k2)

    def test_namespaced_kernel_still_correct(self):
        base = CompileCache()
        cache = namespaced_cache("tenant:alice", base=base)
        cached_ptxas(build_vecadd(), cache=cache)
        kernel = cached_ptxas(build_vecadd(), cache=cache)
        a, b, out, _ = run_vecadd(Device(), kernel)
        assert np.allclose(out, a + b)

    def test_clear_scoped_to_namespace(self):
        base = CompileCache()
        t1 = NamespacedCache(base, "tenant:alice")
        t2 = NamespacedCache(base, "tenant:bob")
        cached_ptxas(build_vecadd(), cache=t1)
        cached_ptxas(build_vecadd(), cache=t2)
        t1.clear()
        assert len(t1) == 0
        assert len(t2) == 1

    def test_disk_layer_keeps_namespaces_apart(self, tmp_path):
        directory = str(tmp_path / "cache")
        warm_base = CompileCache(directory=directory)
        cached_ptxas(build_vecadd(),
                     cache=NamespacedCache(warm_base, "tenant:alice"))
        cold_base = CompileCache(directory=directory)
        alice = NamespacedCache(cold_base, "tenant:alice")
        bob = NamespacedCache(cold_base, "tenant:bob")
        cached_ptxas(build_vecadd(), cache=alice)
        assert alice.stats.hits == 1  # via the disk entry
        cached_ptxas(build_vecadd(), cache=bob)
        assert bob.stats.misses == 1  # bob's namespace was never warmed

    def test_default_base_is_process_cache(self):
        from repro.campaign.compile_cache import get_cache

        view = namespaced_cache("tenant:x")
        assert view.base is get_cache()
