"""The headline determinism guarantee, as a differential test.

A campaign job and a multi-analysis replay job (two distinct job
kinds) are executed locally at 1 and 4 workers and through servers at
1, 4, and 8 workers; the merged result — KernelStats, telemetry
counter totals, and the full canonical result bytes — must be
byte-identical across all five executions.
"""

from __future__ import annotations

import pytest

from repro.server.client import ServerClient
from repro.server.jobs import canonical_result_bytes, run_job_local
from repro.server.service import ServerConfig, start_in_thread

WORKER_COUNTS = (1, 4, 8)

CAMPAIGN_JOB = {"kind": "campaign",
                "payload": {"workload": "vectoradd", "injections": 6,
                            "seed": 2015}}


def _server_record(workers: int, kind: str, payload: dict) -> dict:
    handle = start_in_thread(ServerConfig(workers=workers,
                                          queue_depth=4))
    try:
        client = ServerClient(*handle.address)
        return client.submit_and_wait(kind, dict(payload))
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    record = run_job_local({"kind": "capture",
                            "payload": {"workload": "vectoradd"}},
                           artifact_dir=str(
                               tmp_path_factory.mktemp("traces")),
                           job_id="jdiff")
    assert record["result"]["verified"] is True
    return record["artifact_path"]


class TestCampaignDifferential:
    def test_sharded_matches_local_bytes(self):
        executions = {
            "local-1": run_job_local(CAMPAIGN_JOB, jobs=1),
            "local-4": run_job_local(CAMPAIGN_JOB, jobs=4),
        }
        for workers in WORKER_COUNTS:
            executions[f"server-{workers}"] = _server_record(
                workers, "campaign", CAMPAIGN_JOB["payload"])

        reference = canonical_result_bytes(executions["local-1"])
        for name, record in executions.items():
            assert canonical_result_bytes(record) == reference, \
                f"{name} diverged from local-1"

        # the bytes cover what the issue demands: merged KernelStats,
        # per-trial records, and deterministic telemetry counter totals
        result = executions["local-1"]["result"]
        assert result["kernel_stats"]["warp_instructions"] > 0
        assert len(result["records"]) == 6
        assert result["counters"]


class TestReplayDifferential:
    def test_sharded_matches_local_bytes(self, trace_path):
        payload = {"trace": trace_path,
                   "analyses": ["cachesim", "opcodes", "timing"],
                   "policy": "gto"}
        job = {"kind": "replay", "payload": payload}
        executions = {
            "local-1": run_job_local(job, jobs=1),
            "local-4": run_job_local(job, jobs=4),
        }
        for workers in WORKER_COUNTS:
            executions[f"server-{workers}"] = _server_record(
                workers, "replay", payload)

        reference = canonical_result_bytes(executions["local-1"])
        for name, record in executions.items():
            assert canonical_result_bytes(record) == reference, \
                f"{name} diverged from local-1"
        timing = executions["local-1"]["result"]["analyses"][-1]
        assert timing["data"]["total_cycles"] > 0
