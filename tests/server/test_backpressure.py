"""Admission control: a bounded queue of N takes N+1 jobs (one running,
N queued), rejects exactly k over-submissions with retry-after, and
loses or duplicates nothing."""

from __future__ import annotations

import time

import pytest

from repro.server.client import AdmissionRejected, ServerClient
from repro.server.service import ServerConfig, start_in_thread

DEPTH = 3
OVERFLOW = 4  # the k in "N+k submissions -> exactly k rejections"


@pytest.fixture()
def tight_server():
    handle = start_in_thread(ServerConfig(
        shards=1, workers=1, queue_depth=DEPTH))
    yield handle
    handle.stop()


def _await_running(client, job_id, deadline=30.0):
    end = time.time() + deadline
    while client.status(job_id)["state"] == "queued":
        assert time.time() < end, f"{job_id} never started"
        time.sleep(0.01)


class TestBackpressure:
    def test_exactly_k_rejections_nothing_lost(self, tight_server):
        client = ServerClient(*tight_server.address)

        # occupy the single worker lane with a slow job...
        running = client.submit("bench", spin_ms=1500, tag="running")
        _await_running(client, running)

        # ...fill the queue to its bound...
        queued = [client.submit("bench", spin_ms=1, tag=f"q{i}")
                  for i in range(DEPTH)]

        # ...and the next k submissions all bounce with retry hints.
        rejections = 0
        for i in range(OVERFLOW):
            with pytest.raises(AdmissionRejected) as info:
                client.submit("bench", spin_ms=1, tag=f"over{i}")
            assert info.value.retry_after > 0
            rejections += 1
        assert rejections == OVERFLOW

        # every admitted job completes exactly once, none vanish
        tags = []
        for job_id in [running] + queued:
            record = client.wait(job_id)
            assert record["state"] == "done"
            tags.append(record["result"]["tag"])
        assert sorted(tags) == sorted(["running"]
                                      + [f"q{i}" for i in range(DEPTH)])

        stats = client.stats()["queue"]
        assert stats["rejected"] == OVERFLOW
        assert stats["submitted"] == 1 + DEPTH
        assert stats["completed"] == 1 + DEPTH

    def test_capacity_recovers_after_drain(self, tight_server):
        client = ServerClient(*tight_server.address)
        running = client.submit("bench", spin_ms=400, tag="slow")
        _await_running(client, running)
        queued = [client.submit("bench", spin_ms=1) for _ in range(DEPTH)]
        with pytest.raises(AdmissionRejected):
            client.submit("bench", spin_ms=1)
        for job_id in [running] + queued:
            client.wait(job_id)
        # the lane drained; admission opens again
        record = client.submit_and_wait("bench", spin_ms=0, tag="later")
        assert record["result"]["tag"] == "later"

    def test_submit_and_wait_retries_through_backpressure(
            self, tight_server):
        client = ServerClient(*tight_server.address)
        running = client.submit("bench", spin_ms=600, tag="slow")
        _await_running(client, running)
        for _ in range(DEPTH):
            client.submit("bench", spin_ms=1)
        # the queue is full NOW, but the retry loop lands it eventually
        record = client.submit_and_wait("bench", spin_ms=1, tag="patient")
        assert record["result"]["tag"] == "patient"
        assert client.stats()["queue"]["rejected"] >= 1
