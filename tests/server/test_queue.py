"""ShardedQueue admission, placement, and accounting."""

from __future__ import annotations

import pytest

from repro.server.queue import AdmissionError, ShardedQueue


class TestAdmission:
    def test_bounded_rejects_at_depth(self):
        q = ShardedQueue(shards=1, depth=3)
        for i in range(3):
            q.try_submit(i)
        with pytest.raises(AdmissionError) as info:
            q.try_submit(99)
        assert info.value.retry_after > 0
        assert q.queued() == 3

    def test_rejection_counted(self):
        q = ShardedQueue(shards=1, depth=1)
        q.try_submit("a")
        for _ in range(4):
            with pytest.raises(AdmissionError):
                q.try_submit("b")
        assert q.stats()["rejected"] == 4
        assert q.stats()["submitted"] == 1

    def test_capacity_is_shards_times_depth(self):
        q = ShardedQueue(shards=3, depth=2)
        for i in range(6):
            q.try_submit(i)
        with pytest.raises(AdmissionError):
            q.try_submit(6)

    def test_pop_frees_capacity(self):
        q = ShardedQueue(shards=1, depth=1)
        q.try_submit("a")
        assert q.pop(0) == "a"
        q.try_submit("b")  # no raise

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ShardedQueue(shards=0)
        with pytest.raises(ValueError):
            ShardedQueue(depth=0)


class TestPlacement:
    def test_least_loaded_wins(self):
        q = ShardedQueue(shards=2, depth=8)
        s0 = q.try_submit("a")
        q.pop(s0)  # shard s0 now empty again
        q.try_submit("b")
        q.try_submit("c")
        # never two-deep on one shard while the other is empty
        assert q.queued(0) <= 1 and q.queued(1) <= 1

    def test_round_robin_on_ties(self):
        q = ShardedQueue(shards=4, depth=8)
        shards = [q.try_submit(i) for i in range(4)]
        assert sorted(shards) == [0, 1, 2, 3]

    def test_fifo_within_shard(self):
        q = ShardedQueue(shards=1, depth=8)
        for item in ("a", "b", "c"):
            q.try_submit(item)
        assert [q.pop(0) for _ in range(3)] == ["a", "b", "c"]

    def test_pop_empty_returns_none(self):
        q = ShardedQueue(shards=1, depth=8)
        assert q.pop(0) is None


class TestAccounting:
    def test_remove_withdraws_queued_item(self):
        q = ShardedQueue(shards=1, depth=8)
        shard = q.try_submit("a")
        assert q.remove(shard, "a") is True
        assert q.remove(shard, "a") is False
        assert q.queued() == 0

    def test_stats_shape(self):
        q = ShardedQueue(shards=2, depth=4)
        q.try_submit("a")
        q.note_completed(0)
        q.note_failed(1)
        q.note_cancelled(0)
        stats = q.stats()
        assert stats["shards"] == 2 and stats["depth"] == 4
        assert stats["completed"] == 1
        assert stats["failed"] == 1
        assert stats["cancelled"] == 1
        assert len(stats["per_shard"]) == 2
