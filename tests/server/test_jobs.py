"""Job validation, task expansion, and local-run determinism."""

from __future__ import annotations

import pytest

from repro.server.jobs import (
    JOB_KINDS,
    JobError,
    JobSpec,
    canonical_result_bytes,
    deterministic_counters,
    job_tasks,
    run_job_local,
    validate_job,
)


def spec(kind, **payload):
    return JobSpec(kind=kind, payload=payload)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown job kind"):
            validate_job(spec("mine-bitcoin"))

    def test_campaign_defaults_filled(self):
        out = validate_job(spec("campaign", workload="vectoradd"))
        assert out.payload["injections"] == 8
        assert out.payload["seed"] == 2015
        assert out.payload["use_cache"] is True

    def test_campaign_unknown_workload(self):
        with pytest.raises(JobError, match="unknown workload"):
            validate_job(spec("campaign", workload="nope"))

    def test_campaign_bad_injections(self):
        with pytest.raises(JobError, match="injections"):
            validate_job(spec("campaign", workload="vectoradd",
                              injections=0))

    def test_replay_needs_trace_or_artifact(self):
        with pytest.raises(JobError, match="exactly one"):
            validate_job(spec("replay"))
        with pytest.raises(JobError, match="exactly one"):
            validate_job(spec("replay", trace="a", artifact="b"))

    def test_replay_unknown_analysis(self):
        with pytest.raises(JobError, match="unknown analysis"):
            validate_job(spec("replay", trace="x.rptrace",
                              analyses=["astrology"]))

    def test_replay_timing_is_registered(self):
        out = validate_job(spec("replay", trace="x.rptrace",
                                analyses="timing,opcodes"))
        assert out.payload["analyses"] == ["timing", "opcodes"]

    def test_replay_bad_policy(self):
        with pytest.raises(JobError, match="policy"):
            validate_job(spec("replay", trace="x.rptrace", policy="fifo"))

    def test_study_unknown(self):
        with pytest.raises(JobError, match="unknown study"):
            validate_job(spec("study", which="figure99"))

    def test_tenant_must_be_nonempty(self):
        with pytest.raises(JobError, match="tenant"):
            JobSpec.from_dict({"kind": "bench", "tenant": ""})

    def test_from_dict_roundtrip(self):
        raw = {"kind": "bench", "payload": {"spin_ms": 1},
               "tenant": "acme", "share_cache": True}
        out = JobSpec.from_dict(raw)
        assert out.tenant == "acme"
        assert out.share_cache is True
        assert out.to_dict()["payload"] == {"spin_ms": 1}

    def test_all_kinds_validate_something(self):
        # every advertised kind is wired into the validator
        for kind in JOB_KINDS:
            with pytest.raises(JobError):
                validate_job(spec(kind, workload="nope", which="nope",
                                  spin_ms=-1))


class TestTaskExpansion:
    def test_campaign_one_task_per_trial(self):
        out = validate_job(spec("campaign", workload="vectoradd",
                                injections=5, seed=7))
        tasks = job_tasks(out)
        assert len(tasks) == 5
        assert tasks[2] == ("campaign-trial", "vectoradd", 7, 2,
                            "tenant:default", True)

    def test_campaign_namespace_follows_tenant(self):
        out = validate_job(JobSpec("campaign",
                                   {"workload": "vectoradd"},
                                   tenant="acme"))
        assert job_tasks(out)[0][4] == "tenant:acme"

    def test_replay_one_task_per_analysis(self):
        out = validate_job(spec("replay", trace="t.rptrace",
                                analyses=["opcodes", "timing"],
                                policy="lrr"))
        tasks = job_tasks(out)
        assert tasks == [("replay", "t.rptrace", "opcodes", "lrr"),
                         ("replay", "t.rptrace", "timing", "lrr")]

    def test_capture_path_under_artifact_dir(self, tmp_path):
        out = validate_job(spec("capture", workload="vectoradd"))
        (task,) = job_tasks(out, artifact_dir=str(tmp_path),
                            job_id="j0042")
        assert task[2].startswith(str(tmp_path))
        assert "j0042" in task[2]
        assert task[2].endswith(".rptrace")


class TestDeterministicCounters:
    def test_cache_counters_filtered(self):
        counters = {"exec.warp_instructions": 10,
                    "compile_cache.hits": 3,
                    "compile_cache.misses": 1}
        assert deterministic_counters(counters) == {
            "exec.warp_instructions": 10}


class TestRunJobLocal:
    def test_bench_job(self):
        record = run_job_local({"kind": "bench",
                                "payload": {"spin_ms": 0, "tag": "t"}})
        assert record["state"] == "done"
        assert record["result"]["tag"] == "t"
        assert canonical_result_bytes(record).startswith(b"{")

    def test_campaign_serial_vs_parallel_bytes(self):
        job = {"kind": "campaign",
               "payload": {"workload": "vectoradd", "injections": 4,
                           "seed": 11}}
        serial = run_job_local(job, jobs=1)
        parallel = run_job_local(job, jobs=2)
        assert canonical_result_bytes(serial) \
            == canonical_result_bytes(parallel)
        assert serial["result"]["outcomes"]
        assert len(serial["result"]["records"]) == 4
        assert serial["result"]["kernel_stats"]["warp_instructions"] > 0
        # canonical counters must carry real work but no cache noise
        counters = serial["result"]["counters"]
        assert counters and not any(k.startswith("compile_cache.")
                                    for k in counters)

    def test_capture_then_replay(self, tmp_path):
        captured = run_job_local({"kind": "capture",
                                  "payload": {"workload": "vectoradd"}},
                                 artifact_dir=str(tmp_path),
                                 job_id="jcap")
        assert captured["result"]["verified"] is True
        assert captured["result"]["total_events"] > 0
        path = captured["artifact_path"]
        replayed = run_job_local({"kind": "replay",
                                  "payload": {"trace": path,
                                              "analyses": ["opcodes",
                                                           "timing"]}})
        analyses = replayed["result"]["analyses"]
        assert [a["analysis"] for a in analyses] == ["opcodes", "timing"]
        assert analyses[1]["data"]["total_cycles"] > 0

    def test_replay_parallel_bytes_match(self, tmp_path):
        captured = run_job_local({"kind": "capture",
                                  "payload": {"workload": "vectoradd"}},
                                 artifact_dir=str(tmp_path),
                                 job_id="jcap2")
        job = {"kind": "replay",
               "payload": {"trace": captured["artifact_path"],
                           "analyses": ["cachesim", "opcodes",
                                        "timing"]}}
        assert canonical_result_bytes(run_job_local(job, jobs=1)) \
            == canonical_result_bytes(run_job_local(job, jobs=3))

    def test_telemetry_travels_outside_result(self):
        record = run_job_local({"kind": "campaign",
                                "payload": {"workload": "vectoradd",
                                            "injections": 2}})
        assert "wall_seconds" in record
        assert "manifest" in record
        assert record["telemetry"]["counters"]
        # volatile fields stay out of the canonical bytes
        blob = canonical_result_bytes(record)
        assert b"wall_seconds" not in blob
