"""End-to-end service behaviour over the NDJSON wire.

One module-scoped server (2 shards x 2 workers) backs most tests; the
jobs used here are cheap (bench, small captures/replays) so the suite
stays fast.
"""

from __future__ import annotations

import time

import pytest

from repro.server.client import JobFailed, ServerClient, ServerError
from repro.server.service import ServerConfig, start_in_thread


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = start_in_thread(ServerConfig(
        shards=2, workers=2, queue_depth=8,
        artifact_dir=str(tmp_path_factory.mktemp("artifacts"))))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    host, port = server.address
    return ServerClient(host, port)


class TestBasics:
    def test_ping(self, client):
        assert client.ping()["pong"] is True

    def test_bench_roundtrip(self, client):
        record = client.submit_and_wait("bench", spin_ms=1, tag="x")
        assert record["state"] == "done"
        assert record["result"]["tag"] == "x"

    def test_status_transitions_to_done(self, client):
        job_id = client.submit("bench", spin_ms=1)
        record = client.wait(job_id)
        assert record["job_id"] == job_id
        assert client.status(job_id)["state"] == "done"

    def test_event_stream_ordered_and_terminal_last(self, client):
        job_id = client.submit("bench", spin_ms=1)
        client.wait(job_id)
        events = client.collect(job_id)
        names = [e["event"] for e in events]
        assert names[0] == "running"
        assert names[-1] == "result"
        assert "progress" in names

    def test_per_task_progress_events(self, client):
        record = client.submit_and_wait(
            "campaign", workload="vectoradd", injections=3, seed=5)
        events = client.collect(record["job_id"])
        progress = [e for e in events if e["event"] == "progress"]
        assert [e["task"] for e in progress] == [0, 1, 2]
        assert all(e["of"] == 3 for e in progress)

    def test_unknown_job_errors(self, client):
        with pytest.raises(ServerError, match="unknown job"):
            client.status("j9999")

    def test_bad_job_rejected_with_400(self, client):
        with pytest.raises(ServerError, match="unknown workload"):
            client.submit("campaign", workload="nope")

    def test_stats_counts_completions(self, client):
        before = client.stats()["queue"]["completed"]
        client.submit_and_wait("bench", spin_ms=0)
        assert client.stats()["queue"]["completed"] == before + 1


class TestArtifacts:
    def test_capture_then_replay_via_artifact_id(self, client):
        captured = client.submit_and_wait("capture",
                                          workload="vectoradd")
        assert captured["result"]["verified"] is True
        replayed = client.submit_and_wait(
            "replay", artifact=captured["job_id"],
            analyses=["opcodes", "timing"])
        analyses = replayed["result"]["analyses"]
        assert [a["analysis"] for a in analyses] == ["opcodes",
                                                     "timing"]
        assert analyses[1]["data"]["total_cycles"] > 0

    def test_unknown_artifact_rejected(self, client):
        with pytest.raises(ServerError, match="unknown artifact"):
            client.submit("replay", artifact="j4242",
                          analyses=["opcodes"])


class TestCancellation:
    def test_cancel_running_job(self, client):
        # a many-task bench job gives the cancel a window mid-stream
        job_id = client.submit("campaign", workload="vectoradd",
                               injections=12, seed=9)
        deadline = time.time() + 30
        while client.status(job_id)["state"] == "queued":
            assert time.time() < deadline
            time.sleep(0.01)
        client.cancel(job_id)
        with pytest.raises(JobFailed, match="cancelled"):
            client.wait(job_id)
        deadline = time.time() + 30
        while client.status(job_id)["state"] != "cancelled":
            assert time.time() < deadline
            time.sleep(0.01)

    def test_cancel_finished_job_is_noop(self, client):
        record = client.submit_and_wait("bench", spin_ms=0)
        response = client.cancel(record["job_id"])
        assert response["ok"] is True
        assert response["state"] == "done"

    def test_cancel_unknown_job(self, client):
        with pytest.raises(ServerError, match="unknown job"):
            client.cancel("j8888")


class TestTenancy:
    def test_tenant_travels_to_record(self, server):
        host, port = server.address
        acme = ServerClient(host, port, tenant="acme")
        record = acme.submit_and_wait("bench", spin_ms=0)
        assert record["tenant"] == "acme"
        assert record["manifest"]["cache_namespace"] == "tenant:acme"

    def test_shared_cache_namespace(self, server):
        host, port = server.address
        sharer = ServerClient(host, port, tenant="acme",
                              share_cache=True)
        record = sharer.submit_and_wait("bench", spin_ms=0)
        assert record["manifest"]["cache_namespace"] == "shared"


class TestFailureDelivery:
    def test_worker_failure_reaches_client(self, client):
        # a replay against a nonexistent trace fails inside the worker
        with pytest.raises(JobFailed):
            client.submit_and_wait("replay", trace="/nonexistent.rptrace",
                                   analyses=["opcodes"])

    def test_failed_job_counted(self, client):
        before = client.stats()["queue"]["failed"]
        with pytest.raises(JobFailed):
            client.submit_and_wait("replay", trace="/nonexistent.rptrace",
                                   analyses=["opcodes"])
        assert client.stats()["queue"]["failed"] == before + 1
