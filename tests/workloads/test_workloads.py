"""Workload-suite tests: every registered workload compiles, runs, and
verifies against its host reference — uninstrumented and under
instrumentation (the strongest whole-system integration check)."""

import numpy as np
import pytest

from repro.backend import ptxas
from repro.sim import Device
from repro.workloads import all_names, make
from repro.workloads.datasets import (
    bfs_reference,
    road_graph,
    scale_free_graph,
    sparse_matrix_csr,
    spmv_reference,
    to_ell,
)

#: fast subset exercised under instrumentation as well
INSTRUMENTED_SUBSET = [
    "parboil/sgemm(small)", "parboil/histo", "rodinia/heartwall",
    "rodinia/nw", "miniFE(ELL)",
]


@pytest.mark.parametrize("name", all_names())
def test_workload_verifies(name):
    workload = make(name)
    device = Device()
    kernel = ptxas(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output), f"{name} produced a wrong result"
    assert workload.last_trace.warp_instructions > 0


@pytest.mark.parametrize("name", INSTRUMENTED_SUBSET)
def test_workload_verifies_under_instrumentation(name):
    from repro.sassi import SassiRuntime, spec_from_flags

    workload = make(name)
    device = Device()
    runtime = SassiRuntime(device)  # poisons caller-saved registers
    runtime.register_before_handler(lambda ctx: None)
    spec = spec_from_flags(
        "-sassi-inst-before=all -sassi-before-args=mem-info")
    kernel = runtime.compile(workload.build_ir(), spec)
    output = workload.execute(device, kernel)
    assert workload.verify(output), \
        f"{name} result changed under instrumentation"


class TestDatasets:
    def test_scale_free_deterministic(self):
        a = scale_free_graph(256, seed=5)
        b = scale_free_graph(256, seed=5)
        assert (a.row_offsets == b.row_offsets).all()
        assert (a.columns == b.columns).all()

    def test_scale_free_degree_variance(self):
        graph = scale_free_graph(1024, seed=5)
        degrees = np.diff(graph.row_offsets)
        assert degrees.max() > 4 * degrees.mean()

    def test_road_graph_low_degree(self):
        graph = road_graph(16, seed=5)
        degrees = np.diff(graph.row_offsets)
        assert degrees.max() <= 5
        assert graph.num_rows == 256

    def test_bfs_reference_reaches_source(self):
        graph = road_graph(8)
        levels = bfs_reference(graph)
        assert levels[0] == 0
        assert levels.max() > 2

    def test_ell_conversion_preserves_product(self):
        matrix = sparse_matrix_csr(64, max_row=8, seed=9)
        x = np.random.default_rng(9).random(64).astype(np.float32)
        columns, values, width = to_ell(matrix)
        y_ell = np.zeros(64, dtype=np.float32)
        for k in range(width):
            y_ell += values[k * 64:(k + 1) * 64] \
                * x[columns[k * 64:(k + 1) * 64]]
        assert np.allclose(y_ell, spmv_reference(matrix, x), rtol=1e-4)

    def test_ell_padding_is_harmless(self):
        matrix = sparse_matrix_csr(16, min_row=1, max_row=4, seed=3)
        columns, values, width = to_ell(matrix, pad_to=8)
        assert width == 8
        # padding entries carry value 0
        lengths = np.diff(matrix.row_offsets)
        for row in range(16):
            for k in range(int(lengths[row]), 8):
                assert values[k * 16 + row] == 0.0
