"""PTX text emitter/parser round-trips over builder-generated kernels."""

import pytest

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ptxtext import emit_ptx, parse_ptx
from repro.kernelir.types import PTR
from repro.kernelir.verify import verify_kernel


def roundtrips(kernel):
    text = emit_ptx(kernel)
    reparsed = parse_ptx(text)
    assert emit_ptx(reparsed) == text
    return reparsed


class TestRoundtrip:
    def test_straight_line(self):
        b = KernelBuilder("k", [("n", Type.U32), ("out", PTR)])
        b.store(b.gep(b.param("out"), b.tid_x(), 4), b.tid_x())
        roundtrips(b.finish())

    def test_control_flow(self):
        b = KernelBuilder("k", [("n", Type.S32), ("out", PTR)])
        total = b.var(0, Type.S32)
        with b.for_range(0, b.param("n")) as i:
            with b.if_(b.gt(total, 100)):
                b.break_()
            b.assign(total, b.add(total, i))
        roundtrips(b.finish())

    def test_float_constants_bit_exact(self):
        b = KernelBuilder("k", [("out", PTR)])
        b.store(b.param("out"), b.fmul(0.1, 3.0))
        reparsed = roundtrips(b.finish())
        verify_kernel(reparsed)

    def test_loop_metadata_preserved(self):
        b = KernelBuilder("k", [("n", Type.S32)])
        with b.for_range(0, b.param("n")):
            pass
        kernel = b.finish()
        reparsed = roundtrips(kernel)
        assert reparsed.loops == kernel.loops
        original_membership = {blk.label: blk.loops for blk in kernel.blocks}
        for blk in reparsed.blocks:
            assert blk.loops == original_membership[blk.label]

    def test_shared_bytes_preserved(self):
        b = KernelBuilder("k", [("out", PTR)])
        b.shared_array(256)
        reparsed = roundtrips(b.finish())
        assert reparsed.shared_bytes == 256

    def test_params_preserved(self):
        b = KernelBuilder("k", [("n", Type.U32), ("alpha", Type.F32),
                                ("p", PTR)])
        reparsed = roundtrips(b.finish())
        assert [p.name for p in reparsed.params] == ["n", "alpha", "p"]
        assert reparsed.params[1].type is Type.F32

    def test_atomics_and_shared(self):
        from repro.kernelir.ir import Space

        b = KernelBuilder("k", [("out", PTR)])
        smem = b.shared_array(128)
        offset = b.shared_ptr(smem, b.tid_x(), 4)
        b.store(offset, b.tid_x(), space=Space.SHARED)
        b.barrier()
        b.atomic_add(b.param("out"), b.load_u32(offset, space=Space.SHARED))
        reparsed = roundtrips(b.finish())
        verify_kernel(reparsed)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_ptx("not ptx at all")

    def test_parse_rejects_unknown_mnemonic(self):
        text = (".visible .entry k ()\n{\nentry:\n"
                "    frobnicate.s32 %r0, 1;\n    ret;\n}\n")
        with pytest.raises(ValueError):
            parse_ptx(text)

    def test_parsed_kernel_compiles(self):
        from repro.backend import ptxas

        b = KernelBuilder("k", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.lt(i, b.param("n"))):
            b.store(b.gep(b.param("out"), i, 4), i)
        kernel = parse_ptx(emit_ptx(b.finish()))
        sass = ptxas(kernel)
        assert len(sass.instructions) > 5
