"""Tests for the KernelBuilder front-end and IR verifier."""

import pytest

from repro.kernelir import (
    IRVerificationError,
    KernelBuilder,
    Type,
    verify_kernel,
)
from repro.kernelir.builder import BuildError
from repro.kernelir.ir import IRInstr, IROp, Space
from repro.kernelir.types import PTR


def simple_builder():
    return KernelBuilder("k", [("n", Type.U32), ("out", PTR)])


class TestStructure:
    def test_params_preloaded_in_entry(self):
        b = simple_builder()
        kernel = b.finish()
        entry_ops = [i.op for i in kernel.entry.instrs]
        assert entry_ops.count(IROp.LD) == 2

    def test_param_offsets_follow_layout(self):
        b = KernelBuilder("k", [("n", Type.U32), ("p", PTR), ("m", Type.U32)])
        kernel = b.finish()
        assert kernel.param_offset("n") == 0x140
        assert kernel.param_offset("p") == 0x148  # aligned to 8
        assert kernel.param_offset("m") == 0x150

    def test_unknown_param_rejected(self):
        b = simple_builder()
        with pytest.raises(BuildError):
            b.param("missing")

    def test_if_creates_then_and_merge(self):
        b = simple_builder()
        with b.if_(b.lt(b.tid_x(), b.param("n"))):
            b.store(b.param("out"), b.tid_x())
        kernel = b.finish()
        labels = [blk.label for blk in kernel.blocks]
        assert any(l.startswith("then") for l in labels)
        assert any(l.startswith("merge") for l in labels)

    def test_if_else(self):
        b = simple_builder()
        branch = b.if_(b.lt(b.tid_x(), b.param("n")))
        with branch:
            b.store(b.param("out"), 1)
        with branch.else_():
            b.store(b.param("out"), 2)
        kernel = b.finish()
        labels = [blk.label for blk in kernel.blocks]
        assert any(l.startswith("else") for l in labels)
        # merge block is laid out after the else block
        merge = next(l for l in labels if l.startswith("merge"))
        els = next(l for l in labels if l.startswith("else"))
        assert labels.index(merge) > labels.index(els)

    def test_loop_metadata_recorded(self):
        b = simple_builder()
        with b.for_range(0, 10):
            pass
        kernel = b.finish()
        assert len(kernel.loops) == 1
        loop = kernel.loops[0]
        assert loop.preheader == "entry"

    def test_block_loop_membership(self):
        b = simple_builder()
        with b.for_range(0, 10):
            with b.for_range(0, 4):
                pass
        kernel = b.finish()
        inner_body = next(blk for blk in kernel.blocks
                          if len(blk.loops) == 2)
        assert inner_body.loops[0] == kernel.loops[0].header

    def test_break_outside_loop_rejected(self):
        b = simple_builder()
        with pytest.raises(BuildError):
            b.break_()

    def test_continue_runs_step(self):
        b = simple_builder()
        with b.for_range(0, 10):
            b.continue_()
        kernel = b.finish()
        verify_kernel(kernel)  # continue must keep defs-dominate-uses

    def test_code_after_break_is_dead_but_legal(self):
        b = simple_builder()
        with b.for_range(0, 10):
            b.break_()
            b.store(b.param("out"), 1)  # unreachable
        verify_kernel(b.finish())

    def test_if_condition_must_be_predicate(self):
        b = simple_builder()
        with pytest.raises(BuildError):
            b.if_(b.tid_x())

    def test_finish_is_terminal(self):
        b = simple_builder()
        b.finish()
        with pytest.raises(BuildError):
            b.add(1, 2)


class TestTyping:
    def test_binary_result_type_follows_operands(self):
        b = simple_builder()
        x = b.fadd(1.0, 2.0)
        assert x.type is Type.F32
        y = b.add(b.tid_x(), 1)
        assert y.type is Type.U32

    def test_cmp_produces_predicate(self):
        b = simple_builder()
        assert b.lt(1, 2).type is Type.PRED

    def test_assign_type_mismatch_rejected(self):
        b = simple_builder()
        v = b.var(0, Type.S32)
        with pytest.raises(BuildError):
            b.assign(v, b.fadd(1.0, 1.0))

    def test_gep_produces_pointer(self):
        b = simple_builder()
        p = b.gep(b.param("out"), b.tid_x(), 4)
        assert p.type is Type.U64

    def test_shared_array_allocates(self):
        b = simple_builder()
        base0 = b.shared_array(64)
        base1 = b.shared_array(32)
        kernel = b.finish()
        assert base0.value == 0
        assert base1.value == 64
        assert kernel.shared_bytes == 96


class TestVerifier:
    def test_use_before_def_rejected(self):
        from repro.kernelir.ir import Block, KernelIR, VReg

        ghost = VReg(99, Type.S32)
        kernel = KernelIR("bad", (), blocks=[
            Block("entry", [
                IRInstr(IROp.ST, srcs=(ghost, ghost, ghost),
                        space=Space.GLOBAL, type=Type.S32),
                IRInstr(IROp.RET),
            ]),
        ])
        with pytest.raises(IRVerificationError):
            verify_kernel(kernel)

    def test_missing_terminator_rejected(self):
        from repro.kernelir.ir import Block, KernelIR

        kernel = KernelIR("bad", (), blocks=[Block("entry", [])])
        with pytest.raises(IRVerificationError):
            verify_kernel(kernel)

    def test_unknown_branch_target_rejected(self):
        from repro.kernelir.ir import Block, KernelIR

        kernel = KernelIR("bad", (), blocks=[
            Block("entry", [IRInstr(IROp.BR, targets=("nowhere",))]),
        ])
        with pytest.raises(IRVerificationError):
            verify_kernel(kernel)

    def test_global_store_needs_wide_pointer(self):
        b = simple_builder()
        with pytest.raises(IRVerificationError):
            b.store(b.tid_x(), 1)  # 32-bit pointer to global space
            b.finish()
