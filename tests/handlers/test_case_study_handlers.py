"""Tests for the case-study handler library against kernels with known
ground truth."""

import numpy as np
import pytest

from repro.backend import ptxas
from repro.handlers import (
    BranchProfiler,
    MemoryDivergenceProfiler,
    MemoryTracer,
    OpcodeHistogram,
    ValueProfiler,
)
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Device, Dim3

from tests.conftest import build_vecadd, run_vecadd


class TestOpcodeHistogram:
    def test_vecadd_categories(self):
        device = Device()
        histogram = OpcodeHistogram(device)
        kernel = histogram.compile(build_vecadd())
        run_vecadd(device, kernel, n=64, block=64)
        totals = histogram.totals()
        # 2 loads + 1 store per thread, all threads in range
        assert totals["memory"] == 3 * 64
        assert totals["texture"] == 0
        assert totals["total_executed"] > totals["memory"]
        assert totals["numeric"] > 0

    def test_wide_memory_detected(self):
        device = Device()
        histogram = OpcodeHistogram(device)
        b = KernelBuilder("wide", [("src", PTR), ("dst", PTR)])
        i = b.tid_x()
        value = b.load(b.gep(b.param("src"), i, 8), Type.U64)
        b.store(b.gep(b.param("dst"), i, 8), value)
        kernel = histogram.compile(b.finish())
        src = device.alloc(32 * 8)
        dst = device.alloc(32 * 8)
        device.launch(kernel, Dim3(1), Dim3(32), [src, dst])
        totals = histogram.totals()
        assert totals["extended_memory"] == 2 * 32


class TestBranchProfiler:
    def build_known_divergence(self):
        # every warp splits 10/22 on the tid < 10 test
        b = KernelBuilder("split", [("out", PTR)])
        tid = b.tid_x()
        with b.if_(b.lt(tid, 10)):
            b.store(b.gep(b.param("out"), tid, 4), tid)
        return b.finish()

    def test_divergence_counted(self):
        device = Device()
        profiler = BranchProfiler(device)
        kernel = profiler.compile(self.build_known_divergence())
        ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(2), Dim3(32), [ptr])
        summary = profiler.summary()
        assert summary.static_branches == 1
        assert summary.dynamic_branches == 2      # one per warp
        assert summary.dynamic_divergent == 2     # both diverge
        assert summary.dynamic_pct == 100.0

    def test_thread_counts_accumulated(self):
        device = Device()
        profiler = BranchProfiler(device)
        kernel = profiler.compile(self.build_known_divergence())
        ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(1), Dim3(32), [ptr])
        branch = profiler.branches()[0]
        assert branch.active_threads == 32
        assert branch.taken_threads + branch.not_taken_threads == 32
        # compiled as @!P0 BRA merge: "taken" lanes fail tid < 10
        assert {branch.taken_threads, branch.not_taken_threads} \
            == {10, 22}

    def test_convergent_branch_not_divergent(self):
        b = KernelBuilder("uniform", [("out", PTR)])
        tid = b.tid_x()
        with b.if_(b.lt(b.ctaid_x(), 1)):   # warp-uniform condition
            b.store(b.gep(b.param("out"), tid, 4), tid)
        device = Device()
        profiler = BranchProfiler(device)
        kernel = profiler.compile(b.finish())
        ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(2), Dim3(32), [ptr])
        assert profiler.summary().dynamic_divergent == 0

    def test_warp_and_thread_handlers_agree(self):
        device_a, device_b = Device(), Device()
        warp_profiler = BranchProfiler(device_a, kind="warp")
        thread_profiler = BranchProfiler(device_b, kind="thread")
        ir = self.build_known_divergence()
        for device, profiler in ((device_a, warp_profiler),
                                 (device_b, thread_profiler)):
            kernel = profiler.compile(ir)
            ptr = device.alloc(64 * 4)
            device.launch(kernel, Dim3(1), Dim3(32), [ptr])
        warp_stats = {(b.address, b.total, b.divergent, b.taken_threads)
                      for b in warp_profiler.branches()}
        thread_stats = {(b.address, b.total, b.divergent, b.taken_threads)
                        for b in thread_profiler.branches()}
        assert warp_stats == thread_stats


class TestMemoryDivergence:
    def _profiled(self, stride_elems: int):
        b = KernelBuilder("strided", [("data", PTR), ("stride", Type.U32)])
        i = b.tid_x()
        index = b.mul(i, b.param("stride"))
        value = b.load_u32(b.gep(b.param("data"), index, 4))
        b.store(b.gep(b.param("data"), index, 4), b.add(value, 1))
        device = Device()
        profiler = MemoryDivergenceProfiler(device)
        kernel = profiler.compile(b.finish())
        data = device.alloc(32 * stride_elems * 4 + 64)
        device.launch(kernel, Dim3(1), Dim3(32), [data, stride_elems])
        return profiler

    def test_unit_stride_coalesces(self):
        profiler = self._profiled(1)
        matrix = profiler.matrix()
        # 32 lanes x 4B at stride 4B = exactly 4 unique 32B lines
        assert matrix[31, 3] == 2   # one load + one store
        assert profiler.diverged_fraction() == 1.0  # 4 lines > 1

    def test_large_stride_fully_diverges(self):
        profiler = self._profiled(16)  # 64B apart: every lane own line
        matrix = profiler.matrix()
        assert matrix[31, 31] == 2
        assert profiler.fully_diverged_fraction() == 1.0

    def test_pmf_sums_to_one(self):
        profiler = self._profiled(2)
        assert profiler.pmf().sum() == pytest.approx(1.0)

    def test_local_spills_filtered_out(self):
        # instrumentation's own STL/LDL traffic must not be counted
        profiler = self._profiled(1)
        matrix = profiler.matrix()
        assert matrix.sum() == 2  # only the kernel's global load+store


class TestValueProfiler:
    def test_constant_and_scalar_detection(self):
        b = KernelBuilder("values", [("out", PTR)])
        tid = b.tid_x()
        constant = b.var(5, Type.S32)           # always 5: scalar+const
        varying = b.cvt(tid, Type.S32)          # 0..31 per lane
        b.store(b.gep(b.param("out"), tid, 4), b.add(constant, varying))
        device = Device()
        profiler = ValueProfiler(device)
        kernel = profiler.compile(b.finish())
        ptr = device.alloc(32 * 4)
        device.launch(kernel, Dim3(1), Dim3(32), [ptr])
        profiles = {p.address: p for p in profiler.profiles()}
        # find the MOV32I 5 profile: 32 constant bits and scalar
        const_profiles = [p for p in profiles.values()
                          if p.dsts and p.constant_bits(0) == 32
                          and p.dsts[0][3]]
        assert const_profiles, "constant write not detected as scalar"
        # the S2R tid write is non-scalar with toggling low bits
        tid_profiles = [p for p in profiles.values()
                        if p.dsts and not p.dsts[0][3]]
        assert tid_profiles
        pattern = tid_profiles[0].bit_pattern(0)
        assert pattern.endswith("TTTTT")       # low 5 bits toggle
        assert pattern.startswith("0")         # high bits constant zero

    def test_dump_format_matches_section72(self):
        device = Device()
        profiler = ValueProfiler(device)
        kernel = profiler.compile(build_vecadd())
        run_vecadd(device, kernel, n=32, block=32)
        profiles = [p for p in profiler.profiles() if p.dsts]
        dump = profiler.dump(profiles[0])
        assert "<- [" in dump and len(dump.split("[")[1]) == 33


class TestMemoryTracer:
    def test_trace_matches_executor_accounting(self):
        device = Device()
        tracer = MemoryTracer(device)
        kernel = tracer.compile(build_vecadd())
        _, _, _, stats = run_vecadd(device, kernel, n=64, block=64)
        records = list(tracer.records())
        traced_transactions = sum(len(r.line_addresses) for r in records)
        # executor counted the same global accesses (plus none extra)
        assert traced_transactions == stats.global_transactions
        assert len(records) == stats.global_mem_instructions

    def test_replay_through_cache(self):
        from repro.sim.cache import Cache

        device = Device()
        tracer = MemoryTracer(device)
        kernel = tracer.compile(build_vecadd())
        run_vecadd(device, kernel, n=64, block=64)
        cache = Cache(64 << 10, ways=8)
        tracer.replay_through(cache)
        assert cache.stats.accesses == sum(len(r.line_addresses)
                                           for r in tracer.records())

    def test_trace_shim_removed(self):
        # the deprecated grow-forever .trace list is gone; records()
        # and replay_through() are the supported access paths
        device = Device()
        tracer = MemoryTracer(device)
        kernel = tracer.compile(build_vecadd())
        run_vecadd(device, kernel, n=64, block=64)
        assert not hasattr(tracer, "trace")
        assert list(tracer.records())

    def test_streams_to_explicit_path(self, tmp_path):
        from repro.trace import TraceReader
        from repro.trace.format import TAG_LAUNCH, TAG_KEND, TAG_MEM

        device = Device()
        target = str(tmp_path / "mem.rptrace")
        tracer = MemoryTracer(device, path=target)
        kernel = tracer.compile(build_vecadd())
        run_vecadd(device, kernel, n=64, block=64)
        manifest = tracer.flush()
        # memory events plus the kernel-launch framing records
        assert manifest.count(TAG_MEM) == len(list(tracer.records()))
        assert manifest.count(TAG_LAUNCH) == 1
        assert manifest.count(TAG_KEND) == 1
        # the sidecar file is a first-class .rptrace, readable directly
        events = list(TraceReader(target).events())
        assert len(events) == manifest.total_events

    def test_temp_file_removed_on_close(self):
        import os

        device = Device()
        tracer = MemoryTracer(device)
        kernel = tracer.compile(build_vecadd())
        run_vecadd(device, kernel, n=32, block=32)
        path = tracer.path
        assert os.path.exists(path)
        tracer.close()
        assert not os.path.exists(path)
