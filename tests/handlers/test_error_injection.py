"""Tests for the error-injection campaign machinery."""

import numpy as np
import pytest

from repro.handlers.error_injection import (
    ErrorInjectionCampaign,
    InjectionOutcome,
)
from repro.workloads import make


@pytest.fixture(scope="module")
def campaign():
    return ErrorInjectionCampaign(make("rodinia/nn"), seed=3)


class TestCampaign:
    def test_profile_counts_events(self, campaign):
        total = campaign.profile()
        # nn: ~13 register/memory-writing instructions per thread, 1024
        # threads; predicated-off lanes excluded
        assert total > 1024 * 5
        assert campaign.total_events == total

    def test_golden_run_is_correct(self, campaign):
        golden = campaign.golden_run()
        workload = campaign.workload
        assert workload.verify(golden)

    def test_injection_is_deterministic_per_target(self, campaign):
        campaign.golden_run()
        campaign.profile()
        first = campaign.inject_once(1000, dst_seed=1, bit_seed=5)
        second = campaign.inject_once(1000, dst_seed=1, bit_seed=5)
        assert first.outcome == second.outcome
        assert first.description == second.description

    def test_every_injection_classified(self, campaign):
        result = campaign.run(num_injections=8)
        assert len(result.records) == 8
        for record in result.records:
            assert isinstance(record.outcome, InjectionOutcome)

    def test_fractions_sum_to_one(self, campaign):
        result = campaign.run(num_injections=6)
        assert sum(result.fractions().values()) == pytest.approx(1.0)


class TestPerTrialReseeding:
    """Regression tests for the shared-RNG bug: the campaign used to
    thread one ``default_rng(seed)`` through its trial loop, so trial
    *k*'s site selection depended on every trial before it — running a
    subset, reordering, or parallelizing changed the results."""

    def test_trial_independent_of_preceding_trials(self):
        full = ErrorInjectionCampaign(make("rodinia/nn"), seed=3)
        full.golden_run()
        full.profile()
        records = [full.trial(k) for k in range(4)]

        fresh = ErrorInjectionCampaign(make("rodinia/nn"), seed=3)
        fresh.golden_run()
        fresh.profile()
        lone = fresh.trial(3)  # trials 0..2 never ran here
        assert lone == records[3]

    def test_run_reproducible_across_campaigns(self):
        first = ErrorInjectionCampaign(make("rodinia/nn"), seed=9)
        second = ErrorInjectionCampaign(make("rodinia/nn"), seed=9)
        assert first.run(num_injections=4) == second.run(num_injections=4)

    def test_seed_changes_site_selection(self):
        a = ErrorInjectionCampaign(make("rodinia/nn"), seed=1)
        b = ErrorInjectionCampaign(make("rodinia/nn"), seed=2)
        targets_a = [r.target_event for r in a.run(num_injections=6).records]
        targets_b = [r.target_event for r in b.run(num_injections=6).records]
        assert targets_a != targets_b

    def test_parallel_run_matches_serial(self):
        serial = ErrorInjectionCampaign(make("rodinia/nn"), seed=3,
                                        workload_name="rodinia/nn")
        parallel = ErrorInjectionCampaign(make("rodinia/nn"), seed=3,
                                          workload_name="rodinia/nn")
        assert serial.run(num_injections=4) \
            == parallel.run(num_injections=4, jobs=2)


class TestOutcomes:
    def test_high_bit_pointer_flip_crashes_or_corrupts(self):
        """Flipping address-computation results produces crashes (the
        dominant non-masked outcome in the paper)."""
        campaign = ErrorInjectionCampaign(make("rodinia/nn"), seed=11)
        campaign.golden_run()
        campaign.profile()
        outcomes = set()
        for target in range(0, campaign.total_events,
                            max(campaign.total_events // 24, 1)):
            record = campaign.inject_once(target, dst_seed=0, bit_seed=30)
            outcomes.add(record.outcome)
        assert InjectionOutcome.CRASH in outcomes \
            or InjectionOutcome.SDC_OUTPUT in outcomes

    def test_low_mantissa_flip_often_masked(self):
        """Bit 0 of a float intermediate is below print precision."""
        campaign = ErrorInjectionCampaign(make("rodinia/nn"), seed=12)
        campaign.golden_run()
        campaign.profile()
        outcomes = []
        for target in range(100, 2000, 400):
            record = campaign.inject_once(target, dst_seed=0, bit_seed=0)
            outcomes.append(record.outcome)
        assert any(o in (InjectionOutcome.MASKED,
                         InjectionOutcome.SDC_STDOUT) for o in outcomes)
