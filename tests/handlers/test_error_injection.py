"""Tests for the error-injection campaign machinery."""

import numpy as np
import pytest

from repro.handlers.error_injection import (
    ErrorInjectionCampaign,
    InjectionOutcome,
)
from repro.workloads import make


@pytest.fixture(scope="module")
def campaign():
    return ErrorInjectionCampaign(make("rodinia/nn"), seed=3)


class TestCampaign:
    def test_profile_counts_events(self, campaign):
        total = campaign.profile()
        # nn: ~13 register/memory-writing instructions per thread, 1024
        # threads; predicated-off lanes excluded
        assert total > 1024 * 5
        assert campaign.total_events == total

    def test_golden_run_is_correct(self, campaign):
        golden = campaign.golden_run()
        workload = campaign.workload
        assert workload.verify(golden)

    def test_injection_is_deterministic_per_target(self, campaign):
        campaign.golden_run()
        campaign.profile()
        first = campaign.inject_once(1000, dst_seed=1, bit_seed=5)
        second = campaign.inject_once(1000, dst_seed=1, bit_seed=5)
        assert first.outcome == second.outcome
        assert first.description == second.description

    def test_every_injection_classified(self, campaign):
        result = campaign.run(num_injections=8)
        assert len(result.records) == 8
        for record in result.records:
            assert isinstance(record.outcome, InjectionOutcome)

    def test_fractions_sum_to_one(self, campaign):
        result = campaign.run(num_injections=6)
        assert sum(result.fractions().values()) == pytest.approx(1.0)


class TestOutcomes:
    def test_high_bit_pointer_flip_crashes_or_corrupts(self):
        """Flipping address-computation results produces crashes (the
        dominant non-masked outcome in the paper)."""
        campaign = ErrorInjectionCampaign(make("rodinia/nn"), seed=11)
        campaign.golden_run()
        campaign.profile()
        outcomes = set()
        for target in range(0, campaign.total_events,
                            max(campaign.total_events // 24, 1)):
            record = campaign.inject_once(target, dst_seed=0, bit_seed=30)
            outcomes.add(record.outcome)
        assert InjectionOutcome.CRASH in outcomes \
            or InjectionOutcome.SDC_OUTPUT in outcomes

    def test_low_mantissa_flip_often_masked(self):
        """Bit 0 of a float intermediate is below print precision."""
        campaign = ErrorInjectionCampaign(make("rodinia/nn"), seed=12)
        campaign.golden_run()
        campaign.profile()
        outcomes = []
        for target in range(100, 2000, 400):
            record = campaign.inject_once(target, dst_seed=0, bit_seed=0)
            outcomes.append(record.outcome)
        assert any(o in (InjectionOutcome.MASKED,
                         InjectionOutcome.SDC_STDOUT) for o in outcomes)
