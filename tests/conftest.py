"""Shared fixtures: common kernels, devices, and compile helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ptxas
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Device, Dim3


def build_vecadd():
    """float vecadd — the repository's canonical kernel."""
    b = KernelBuilder("vecadd", [("n", Type.U32), ("a", PTR), ("b", PTR),
                                 ("out", PTR)])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        x = b.load_f32(b.gep(b.param("a"), i, 4))
        y = b.load_f32(b.gep(b.param("b"), i, 4))
        b.store(b.gep(b.param("out"), i, 4), b.fadd(x, y))
    return b.finish()


def build_saxpy():
    b = KernelBuilder("saxpy", [("n", Type.U32), ("alpha", Type.F32),
                                ("x", PTR), ("y", PTR)])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        xv = b.load_f32(b.gep(b.param("x"), i, 4))
        yv = b.load_f32(b.gep(b.param("y"), i, 4))
        b.store(b.gep(b.param("y"), i, 4),
                b.fma(b.param("alpha"), xv, yv))
    return b.finish()


def build_divergent_sum():
    """Per-thread loop with data-dependent trip count and a break."""
    b = KernelBuilder("divsum", [("n", Type.U32), ("out", PTR)])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        limit = b.cvt(b.and_(i, 7), Type.S32)
        total = b.var(0, Type.S32)
        with b.for_range(0, limit) as j:
            with b.if_(b.eq(j, 4)):
                b.break_()
            b.assign(total, b.add(total, j))
        b.store(b.gep(b.param("out"), i, 4), total)
    return b.finish()


def divergent_sum_reference(n: int) -> np.ndarray:
    def one(i):
        total = 0
        for j in range(i & 7):
            if j == 4:
                break
            total += j
        return total

    return np.array([one(i) for i in range(n)], dtype=np.int32)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the tests/golden/ stat snapshots from the "
             "current executor behavior instead of comparing")


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def vecadd_kernel():
    return ptxas(build_vecadd())


def run_vecadd(device, kernel, n=256, block=128):
    rng = np.random.default_rng(7)
    a = rng.random(n, dtype=np.float32)
    b = rng.random(n, dtype=np.float32)
    pa, pb = device.alloc_array(a), device.alloc_array(b)
    po = device.alloc(n * 4)
    grid = Dim3((n + block - 1) // block)
    stats = device.launch(kernel, grid, Dim3(block), [n, pa, pb, po])
    out = device.read_array(po, n, np.float32)
    return a, b, out, stats
