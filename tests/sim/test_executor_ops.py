"""Targeted executor-semantics tests for less-travelled instructions:
warp communication (VOTE/SHFL), conversions, wide accesses, texture
loads, special registers, and the cost model."""

import numpy as np
import pytest

from repro.backend import ptxas
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ir import Space
from repro.kernelir.types import PTR
from repro.isa import parse_kernel
from repro.sim import Device, Dim3


def run_snippet(device, body, num_regs=24, block=32, params=()):
    text = ".kernel snip\n"
    for name, offset, size in params:
        text += f".param {name} 0x{offset:x} {size}\n"
    text += body + "\nEXIT ;"
    kernel = parse_kernel(text)
    from dataclasses import replace

    kernel = replace(kernel, num_regs=num_regs)
    return device.launch(kernel, Dim3(1), Dim3(block), [])


class TestWarpOps:
    def test_vote_ballot(self, device):
        from repro.sim.executor import Executor
        from repro.sim.warp import Warp
        from repro.sim.executor import CTAContext
        from repro.sim.costmodel import CycleCounter

        kernel = device.load_kernel(parse_kernel("""
.kernel v
        S2R R0, SR_LANEID ;
        ISETP.LT.U32.AND P0, PT, R0, 5, PT ;
        VOTE.BALLOT R2, P0 ;
        EXIT ;
"""))
        executor = Executor(device)
        executor._kernel = kernel
        warp = Warp(0, 8, 32, np.arange(32))
        executor._init_warp(warp, (0, 0, 0), Dim3(1), Dim3(32), 32)
        executor._run_warp(warp, CTAContext((0, 0, 0), 0), CycleCounter())
        assert warp.regs[2, 0] == 0b11111

    def test_shfl_idx_broadcast(self, device):
        b = KernelBuilder("shfl", [("out", PTR)])
        # no SHFL in the IR menu: exercise via warp handler intrinsics
        # instead; this test covers the ISA op directly
        from repro.sim.executor import Executor, CTAContext
        from repro.sim.warp import Warp
        from repro.sim.costmodel import CycleCounter

        kernel = device.load_kernel(parse_kernel("""
.kernel s
        S2R R0, SR_LANEID ;
        MOV32I R1, 0 ;
        SHFL.IDX R2, R0, R1 ;
        EXIT ;
"""))
        executor = Executor(device)
        executor._kernel = kernel
        warp = Warp(0, 8, 32, np.arange(32))
        executor._init_warp(warp, (0, 0, 0), Dim3(1), Dim3(32), 32)
        executor._run_warp(warp, CTAContext((0, 0, 0), 0), CycleCounter())
        assert (warp.regs[2] == 0).all()   # everyone got lane 0's value


class TestConversionsAndWidths:
    def test_f2i_and_i2f_roundtrip(self, device):
        b = KernelBuilder("conv", [("out", PTR)])
        tid = b.tid_x()
        as_float = b.cvt(b.cvt(tid, Type.S32), Type.F32)
        scaled = b.fmul(as_float, 2.5)
        back = b.cvt(scaled, Type.S32)
        b.store(b.gep(b.param("out"), tid, 4), back)
        kernel = ptxas(b.finish())
        out = device.alloc(32 * 4)
        device.launch(kernel, Dim3(1), Dim3(32), [out])
        got = device.read_array(out, 32, np.int32)
        expected = np.trunc(np.arange(32, dtype=np.float32)
                            * np.float32(2.5)).astype(np.int32)
        assert (got == expected).all()

    def test_128bit_load_store(self, device):
        kernel = device.load_kernel(parse_kernel("""
.kernel wide
        MOV R4, c[0x0][0x140] ;
        MOV R5, c[0x0][0x144] ;
        LDG.128 R8, [R4] ;
        IADD R4, R4, 0x10 ;
        STG.128 [R4], R8 ;
        EXIT ;
"""))
        from dataclasses import replace
        from repro.isa.program import KernelParam

        kernel = replace(kernel, num_regs=16,
                         params=(KernelParam("p", 0x140, 8),))
        device.program.kernels[kernel.name] = kernel
        buffer = device.alloc(64)
        payload = np.arange(4, dtype=np.uint32)
        device.memcpy_htod(buffer, payload)
        device.launch(kernel, Dim3(1), Dim3(1), [buffer])
        copied = device.read_array(buffer + 16, 4, np.uint32)
        assert (copied == payload).all()

    def test_texture_load_reads_global(self, device):
        b = KernelBuilder("tex", [("src", PTR), ("dst", PTR)])
        i = b.tid_x()
        value = b.load_u32(b.gep(b.param("src"), i, 4),
                           space=Space.TEXTURE)
        b.store(b.gep(b.param("dst"), i, 4), value)
        kernel = ptxas(b.finish())
        data = np.arange(32, dtype=np.uint32) * 3
        src = device.alloc_array(data)
        dst = device.alloc(32 * 4)
        stats = device.launch(kernel, Dim3(1), Dim3(32), [src, dst])
        assert (device.read_array(dst, 32, np.uint32) == data).all()
        from repro.isa.opcodes import Opcode

        assert stats.opcode_counts[Opcode.TLD] == 1


class TestSpecialRegisters:
    def test_2d_coordinates(self, device):
        b = KernelBuilder("coords", [("out", PTR)])
        linear = b.mad(b.tid_y(), b.ntid_x(), b.tid_x())
        block_linear = b.mad(b.ctaid_y(), b.nctaid_x(), b.ctaid_x())
        index = b.mad(block_linear,
                      b.mul(b.ntid_x(), b.ntid_y()), linear)
        b.store(b.gep(b.param("out"), index, 4), index)
        kernel = ptxas(b.finish())
        out = device.alloc(4 * 4 * 4 * 4)
        device.launch(kernel, Dim3(2, 2), Dim3(4, 4), [out])
        got = device.read_array(out, 64, np.uint32)
        assert (got == np.arange(64)).all()


class TestCostModel:
    def test_mufu_costs_more_than_iadd(self, device):
        def cycles_of(emit):
            b = KernelBuilder("cost", [("out", PTR)])
            value = b.cvt(b.tid_x(), Type.S32)
            for _ in range(8):
                value = emit(b, value)
            b.store(b.gep(b.param("out"), b.tid_x(), 4), value)
            kernel = ptxas(b.finish())
            out = device.alloc(32 * 4)
            return device.launch(kernel, Dim3(1), Dim3(32),
                                 [out]).cycles

        cheap = cycles_of(lambda b, v: b.add(v, 1))
        pricey = cycles_of(
            lambda b, v: b.cvt(b.sqrt(b.cvt(v, Type.F32)), Type.S32))
        assert pricey > cheap

    def test_diverged_memory_costs_more(self, device):
        def cycles_of(stride):
            b = KernelBuilder("div", [("data", PTR), ("s", Type.U32)])
            index = b.mul(b.tid_x(), b.param("s"))
            value = b.load_u32(b.gep(b.param("data"), index, 4))
            b.store(b.gep(b.param("data"), index, 4), value)
            kernel = ptxas(b.finish())
            data = device.alloc(32 * stride * 4 + 64)
            return device.launch(kernel, Dim3(1), Dim3(32),
                                 [data, stride]).cycles

        assert cycles_of(16) > cycles_of(1)


class TestFlo:
    def test_flo_edge_cases(self, device):
        from repro.sim.costmodel import CycleCounter
        from repro.sim.executor import CTAContext, Executor
        from repro.sim.warp import Warp

        kernel = device.load_kernel(parse_kernel("""
.kernel flo
        FLO R2, R3 ;
        EXIT ;
"""))
        values = [0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 2, 3]
        values += [1 << k for k in range(2, 27)]          # powers of two
        assert len(values) == 32
        executor = Executor(device)
        executor._kernel = kernel
        warp = Warp(0, 8, 32, np.arange(32))
        executor._init_warp(warp, (0, 0, 0), Dim3(1), Dim3(32), 32)
        warp.regs[3] = np.array(values, dtype=np.uint32)
        executor._run_warp(warp, CTAContext((0, 0, 0), 0), CycleCounter())
        expected = [0xFFFFFFFF if v == 0 else v.bit_length() - 1
                    for v in values]
        assert warp.regs[2].tolist() == expected
