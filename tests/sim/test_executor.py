"""Functional tests of the SIMT executor: correctness of kernels with
arithmetic, control flow, divergence, shared memory, atomics, barriers."""

import numpy as np
import pytest

from repro.backend import ptxas
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ir import AtomOp, Space
from repro.kernelir.types import PTR
from repro.sim import Device, DeviceFault, Dim3, HangDetected
from repro.sim.executor import SimConfig

from tests.conftest import (
    build_divergent_sum,
    build_saxpy,
    build_vecadd,
    divergent_sum_reference,
    run_vecadd,
)


class TestStraightLine:
    def test_vecadd(self, device, vecadd_kernel):
        a, b, out, _ = run_vecadd(device, vecadd_kernel, n=1000, block=256)
        assert np.allclose(out, a + b)

    def test_partial_last_warp(self, device, vecadd_kernel):
        a, b, out, _ = run_vecadd(device, vecadd_kernel, n=33, block=64)
        assert np.allclose(out, a + b)

    def test_saxpy_float_params(self, device):
        kernel = ptxas(build_saxpy())
        n = 257
        rng = np.random.default_rng(3)
        x = rng.random(n, dtype=np.float32)
        y = rng.random(n, dtype=np.float32)
        px, py = device.alloc_array(x), device.alloc_array(y)
        device.launch(kernel, Dim3(3), Dim3(128), [n, 2.5, px, py])
        out = device.read_array(py, n, np.float32)
        assert np.allclose(out, np.float32(2.5) * x + y)

    def test_multi_cta_grid(self, device, vecadd_kernel):
        a, b, out, stats = run_vecadd(device, vecadd_kernel, n=2048,
                                      block=128)
        assert np.allclose(out, a + b)


class TestDivergence:
    def test_divergent_loop_with_break(self, device):
        kernel = ptxas(build_divergent_sum())
        n = 300
        out_ptr = device.alloc(n * 4)
        device.launch(kernel, Dim3(2), Dim3(256), [n, out_ptr])
        out = device.read_array(out_ptr, n, np.int32)
        assert (out == divergent_sum_reference(n)).all()

    def test_if_else_both_sides(self, device):
        b = KernelBuilder("ifelse", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.lt(i, b.param("n"))):
            branch = b.if_(b.eq(b.and_(i, 1), 0))
            result = b.var(0, Type.S32)
            with branch:
                b.assign(result, b.mul(b.cvt(i, Type.S32), 2))
            with branch.else_():
                b.assign(result, b.add(b.cvt(i, Type.S32), 100))
            b.store(b.gep(b.param("out"), i, 4), result)
        kernel = ptxas(b.finish())
        n = 128
        out_ptr = device.alloc(n * 4)
        device.launch(kernel, Dim3(1), Dim3(128), [n, out_ptr])
        out = device.read_array(out_ptr, n, np.int32)
        expected = np.where(np.arange(n) % 2 == 0, np.arange(n) * 2,
                            np.arange(n) + 100)
        assert (out == expected).all()

    def test_early_return_inside_if(self, device):
        b = KernelBuilder("early", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.ge(i, b.param("n"))):
            b.ret()
        b.store(b.gep(b.param("out"), i, 4), b.add(b.cvt(i, Type.S32), 1))
        kernel = ptxas(b.finish())
        n = 40
        out_ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(1), Dim3(64), [n, out_ptr])
        out = device.read_array(out_ptr, 64, np.int32)
        assert (out[:n] == np.arange(1, n + 1)).all()
        assert (out[n:] == 0).all()

    def test_nested_divergent_loops(self, device):
        b = KernelBuilder("nested", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.lt(i, b.param("n"))):
            total = b.var(0, Type.S32)
            outer = b.cvt(b.and_(i, 3), Type.S32)
            with b.for_range(0, outer) as j:
                with b.for_range(0, j) as k:
                    b.assign(total, b.add(total, k))
            b.store(b.gep(b.param("out"), i, 4), total)
        kernel = ptxas(b.finish())
        n = 64
        out_ptr = device.alloc(n * 4)
        device.launch(kernel, Dim3(1), Dim3(64), [n, out_ptr])
        out = device.read_array(out_ptr, n, np.int32)

        def ref(i):
            return sum(k for j in range(i & 3) for k in range(j))

        assert (out == np.array([ref(i) for i in range(n)])).all()

    def test_continue_in_loop(self, device):
        b = KernelBuilder("cont", [("n", Type.U32), ("out", PTR)])
        i = b.global_index_x()
        with b.if_(b.lt(i, b.param("n"))):
            total = b.var(0, Type.S32)
            with b.for_range(0, 8) as j:
                with b.if_(b.eq(b.and_(j, 1), 1)):
                    b.continue_()
                b.assign(total, b.add(total, j))
            b.store(b.gep(b.param("out"), i, 4), total)
        kernel = ptxas(b.finish())
        n = 48
        out_ptr = device.alloc(n * 4)
        device.launch(kernel, Dim3(1), Dim3(64), [n, out_ptr])
        out = device.read_array(out_ptr, n, np.int32)
        assert (out == 0 + 2 + 4 + 6).all()


class TestSharedMemoryAndBarriers:
    def test_block_reverse_through_shared(self, device):
        b = KernelBuilder("reverse", [("data", PTR)])
        smem = b.shared_array(64 * 4)
        tid = b.tid_x()
        value = b.load_u32(b.gep(b.param("data"), tid, 4))
        b.store(b.shared_ptr(smem, tid, 4), value, space=Space.SHARED)
        b.barrier()
        reversed_index = b.sub(63, tid)
        got = b.load_u32(b.shared_ptr(smem, reversed_index, 4),
                         space=Space.SHARED)
        b.store(b.gep(b.param("data"), tid, 4), got)
        kernel = ptxas(b.finish())
        data = np.arange(64, dtype=np.uint32)
        ptr = device.alloc_array(data)
        device.launch(kernel, Dim3(1), Dim3(64), [ptr],
                      shared_bytes=64 * 4)
        out = device.read_array(ptr, 64, np.uint32)
        assert (out == data[::-1]).all()

    def test_barrier_across_warps(self, device):
        # warp 1 reads what warp 0 wrote before the barrier
        b = KernelBuilder("xwarp", [("out", PTR)])
        smem = b.shared_array(64 * 4)
        tid = b.tid_x()
        b.store(b.shared_ptr(smem, tid, 4), b.add(tid, 7),
                space=Space.SHARED)
        b.barrier()
        partner = b.xor(tid, 32)  # the other warp's lane
        got = b.load_u32(b.shared_ptr(smem, partner, 4), space=Space.SHARED)
        b.store(b.gep(b.param("out"), tid, 4), got)
        kernel = ptxas(b.finish())
        ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(1), Dim3(64), [ptr])
        out = device.read_array(ptr, 64, np.uint32)
        expected = (np.arange(64) ^ 32) + 7
        assert (out == expected).all()


class TestAtomics:
    def test_global_atomic_add_counts_threads(self, device):
        b = KernelBuilder("count", [("counter", PTR)])
        b.atomic_add(b.param("counter"), 1)
        kernel = ptxas(b.finish())
        ptr = device.alloc(4)
        device.launch(kernel, Dim3(4), Dim3(64), [ptr])
        assert device.read_array(ptr, 1, np.uint32)[0] == 256

    def test_atomic_returns_old_value(self, device):
        b = KernelBuilder("ticket", [("counter", PTR), ("out", PTR)])
        i = b.global_index_x()
        ticket = b.atomic_add(b.param("counter"), 1)
        b.store(b.gep(b.param("out"), i, 4), ticket)
        kernel = ptxas(b.finish())
        counter = device.alloc(4)
        out_ptr = device.alloc(64 * 4)
        device.launch(kernel, Dim3(1), Dim3(64), [counter, out_ptr])
        tickets = device.read_array(out_ptr, 64, np.uint32)
        assert sorted(tickets) == list(range(64))

    def test_atomic_max(self, device):
        b = KernelBuilder("amax", [("best", PTR), ("data", PTR)])
        i = b.global_index_x()
        value = b.load_s32(b.gep(b.param("data"), i, 4))
        b.atom(AtomOp.MAX, b.param("best"), value, type_=Type.S32)
        kernel = ptxas(b.finish())
        rng = np.random.default_rng(11)
        data = rng.integers(-1000, 1000, 128).astype(np.int32)
        pd = device.alloc_array(data)
        best = device.alloc(4)
        device.memcpy_htod(best, np.array([-(2**31)], dtype=np.int32))
        device.launch(kernel, Dim3(2), Dim3(64), [best, pd])
        assert device.read_array(best, 1, np.int32)[0] == data.max()

    def test_shared_atomics(self, device):
        b = KernelBuilder("satom", [("out", PTR)])
        smem = b.shared_array(4)
        b.atomic_add(smem, 1, space=Space.SHARED)
        b.barrier()
        with b.if_(b.eq(b.tid_x(), 0)):
            b.store(b.param("out"),
                    b.load_u32(smem, space=Space.SHARED))
        kernel = ptxas(b.finish())
        ptr = device.alloc(4)
        device.launch(kernel, Dim3(1), Dim3(96), [ptr])
        assert device.read_array(ptr, 1, np.uint32)[0] == 96


class TestFaults:
    def test_out_of_bounds_store_faults(self, device):
        b = KernelBuilder("oob", [("out", PTR)])
        b.store(b.add(b.param("out"), 1 << 30), 1)
        kernel = ptxas(b.finish())
        ptr = device.alloc(4)
        with pytest.raises(DeviceFault):
            device.launch(kernel, Dim3(1), Dim3(32), [ptr])

    def test_watchdog_detects_hang(self):
        device = Device(config=SimConfig(max_warp_instructions=10_000))
        b = KernelBuilder("spin", [("out", PTR)])
        flag = b.var(0, Type.S32)
        with b.while_(lambda: b.eq(flag, 0)):
            pass
        kernel = ptxas(b.finish())
        ptr = device.alloc(4)
        with pytest.raises(HangDetected):
            device.launch(kernel, Dim3(1), Dim3(32), [ptr])

    def test_wrong_arg_count_rejected(self, device, vecadd_kernel):
        with pytest.raises(DeviceFault):
            device.launch(vecadd_kernel, Dim3(1), Dim3(32), [1, 2])


class TestStats:
    def test_counts_are_plausible(self, device, vecadd_kernel):
        _, _, _, stats = run_vecadd(device, vecadd_kernel, n=256, block=128)
        assert stats.warp_instructions > 0
        assert stats.thread_instructions >= stats.warp_instructions
        assert stats.global_mem_instructions == 24  # 3 per warp, 8 warps
        assert stats.sassi_warp_instructions == 0

    def test_coalesced_transactions(self, device, vecadd_kernel):
        # unit-stride float accesses: 32 lanes x 4B = 4 lines of 32B
        _, _, _, stats = run_vecadd(device, vecadd_kernel, n=256, block=128)
        assert stats.global_transactions == 24 * 4

    def test_cycles_accumulate(self, device, vecadd_kernel):
        _, _, _, stats = run_vecadd(device, vecadd_kernel)
        assert stats.cycles >= stats.warp_instructions
