"""Property-based ALU semantics tests: kernels computing a single
operation lane-wise must agree with numpy reference semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import ptxas
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Device, Dim3

N = 64


def _binary_kernel(name, emit, type_):
    b = KernelBuilder(name, [("a", PTR), ("b", PTR), ("out", PTR)])
    i = b.global_index_x()
    x = b.load(b.gep(b.param("a"), i, 4), type_)
    y = b.load(b.gep(b.param("b"), i, 4), type_)
    b.store(b.gep(b.param("out"), i, 4), emit(b, x, y))
    return ptxas(b.finish())


_INT_OPS = {
    "add": (lambda b, x, y: b.add(x, y), lambda a, b: a + b),
    "sub": (lambda b, x, y: b.sub(x, y), lambda a, b: a - b),
    "mul": (lambda b, x, y: b.mul(x, y), lambda a, b: a * b),
    "and": (lambda b, x, y: b.and_(x, y), lambda a, b: a & b),
    "or": (lambda b, x, y: b.or_(x, y), lambda a, b: a | b),
    "xor": (lambda b, x, y: b.xor(x, y), lambda a, b: a ^ b),
    "min": (lambda b, x, y: b.min_(x, y), np.minimum),
    "max": (lambda b, x, y: b.max_(x, y), np.maximum),
}

_FLOAT_OPS = {
    "fadd": (lambda b, x, y: b.fadd(x, y), lambda a, b: a + b),
    "fsub": (lambda b, x, y: b.fsub(x, y), lambda a, b: a - b),
    "fmul": (lambda b, x, y: b.fmul(x, y), lambda a, b: a * b),
    "fmin": (lambda b, x, y: b.min_(x, y), np.fmin),
    "fmax": (lambda b, x, y: b.max_(x, y), np.fmax),
}

_KERNELS = {}


def _kernel_for(op_name, emit, type_):
    key = (op_name, type_)
    if key not in _KERNELS:
        _KERNELS[key] = _binary_kernel(f"prop_{op_name}", emit, type_)
    return _KERNELS[key]


def _run(kernel, a, b):
    device = Device()
    pa, pb = device.alloc_array(a), device.alloc_array(b)
    po = device.alloc(N * 4)
    device.launch(kernel, Dim3(2), Dim3(32), [pa, pb, po])
    return device.read_array(po, N, a.dtype)


int_arrays = st.lists(
    st.integers(-(2**31), 2**31 - 1), min_size=N, max_size=N
).map(lambda xs: np.array(xs, dtype=np.int64).astype(np.int32))


@pytest.mark.parametrize("op_name", sorted(_INT_OPS))
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_int32_ops_match_numpy(op_name, data):
    emit, reference = _INT_OPS[op_name]
    a = data.draw(int_arrays)
    b = data.draw(int_arrays)
    kernel = _kernel_for(op_name, emit, Type.S32)
    got = _run(kernel, a, b)
    with np.errstate(over="ignore"):
        expected = reference(a.astype(np.int64),
                             b.astype(np.int64)).astype(np.int64)
    expected = (expected & 0xFFFFFFFF).astype(np.uint32).view(np.int32)
    assert (got == expected).all()


float_arrays = st.lists(
    st.floats(-1e6, 1e6, width=32), min_size=N, max_size=N
).map(lambda xs: np.array(xs, dtype=np.float32))


@pytest.mark.parametrize("op_name", sorted(_FLOAT_OPS))
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_f32_ops_match_numpy(op_name, data):
    emit, reference = _FLOAT_OPS[op_name]
    a = data.draw(float_arrays)
    b = data.draw(float_arrays)
    kernel = _kernel_for(op_name, emit, Type.F32)
    got = _run(kernel, a, b)
    expected = reference(a, b).astype(np.float32)
    assert np.array_equal(got, expected), (got[:4], expected[:4])


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_shift_semantics(data):
    amounts = np.array(data.draw(st.lists(st.integers(0, 40),
                                          min_size=N, max_size=N)),
                       dtype=np.int32)
    values = data.draw(int_arrays)

    def emit(b, x, y):
        return b.shr(x, y)

    kernel = _kernel_for("shr_s32", emit, Type.S32)
    got = _run(kernel, values, amounts)
    clamped = np.minimum(amounts, 31)
    expected = (values.astype(np.int64) >> clamped).astype(np.int32)
    assert (got == expected).all()


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_wide_multiply_is_64bit(data):
    a = data.draw(st.lists(st.integers(0, 2**32 - 1),
                           min_size=N, max_size=N)
                  .map(lambda xs: np.array(xs, dtype=np.uint32)))
    b = data.draw(st.lists(st.integers(0, 2**32 - 1),
                           min_size=N, max_size=N)
                  .map(lambda xs: np.array(xs, dtype=np.uint32)))
    key = ("mulwide", Type.U64)
    if key not in _KERNELS:
        builder = KernelBuilder("prop_mulwide",
                                [("a", PTR), ("b", PTR), ("out", PTR)])
        i = builder.global_index_x()
        x = builder.load_u32(builder.gep(builder.param("a"), i, 4))
        y = builder.load_u32(builder.gep(builder.param("b"), i, 4))
        builder.store(builder.gep(builder.param("out"), i, 8),
                      builder.mul_wide(x, y))
        _KERNELS[key] = ptxas(builder.finish())
    device = Device()
    pa, pb = device.alloc_array(a), device.alloc_array(b)
    po = device.alloc(N * 8)
    device.launch(_KERNELS[key], Dim3(2), Dim3(32), [pa, pb, po])
    got = device.read_array(po, N, np.uint64)
    expected = a.astype(np.uint64) * b.astype(np.uint64)
    assert (got == expected).all()
