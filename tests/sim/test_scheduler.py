"""Unit tests for the cycle-stepped warp scheduler.

Covers the exhaustiveness contract (every opcode has a timing entry,
and the flat model's issue costs are derived from the same table, so
golden cycle counts cannot silently drift), plus pinned small-schedule
behavior: stall bubbles, memory-latency grading, scoreboard structural
stalls, CTA barriers, and both issue policies.
"""

from __future__ import annotations

import pytest

from repro.isa.opcodes import Opcode
from repro.sim import costmodel
from repro.sim.scheduler import (
    DRAM_LATENCY,
    L1_HIT_LATENCY,
    L2_HIT_LATENCY,
    LATENCY_TABLE,
    POLICIES,
    SchedulerConfig,
    WarpInstr,
    WarpStream,
    divergence_spans,
    missing_entries,
    schedule_launch,
)

#: the retired flat model's _EXTRA_ISSUE dict (cost = 1 + extra);
#: the table's issue fields must reproduce it exactly or every golden
#: cycle snapshot and Table 3 ratio moves
LEGACY_EXTRA_ISSUE = {
    Opcode.MUFU: 3,
    Opcode.IMUL: 1,
    Opcode.IMAD: 1,
    Opcode.BAR: 2,
    Opcode.ATOM: 4,
    Opcode.ATOMS: 2,
    Opcode.RED: 4,
}


class TestLatencyTable:
    def test_every_opcode_has_an_entry(self):
        # this is the satellite guard: adding an Opcode member without
        # a latency entry must fail here (and costmodel fails at import)
        assert missing_entries() == [], (
            f"opcodes missing a LATENCY_TABLE entry: "
            f"{[op.name for op in missing_entries()]}")

    def test_no_stray_entries(self):
        assert set(LATENCY_TABLE) == set(Opcode)

    def test_missing_entries_reports_gaps(self):
        table = dict(LATENCY_TABLE)
        del table[Opcode.FFMA]
        assert missing_entries(table) == [Opcode.FFMA]
        assert len(missing_entries({})) == len(list(Opcode))

    @pytest.mark.parametrize("opcode", list(Opcode),
                             ids=lambda op: op.name)
    def test_entries_are_sane(self, opcode):
        entry = LATENCY_TABLE[opcode]
        assert entry.issue >= 1
        assert entry.stall >= 1
        assert entry.latency >= 1
        if entry.barrier:
            # a wait barrier only makes sense for latency past the stall
            assert entry.latency > entry.stall

    @pytest.mark.parametrize("opcode", list(Opcode),
                             ids=lambda op: op.name)
    def test_issue_costs_match_the_flat_model(self, opcode):
        expected = 1 + LEGACY_EXTRA_ISSUE.get(opcode, 0)
        assert LATENCY_TABLE[opcode].issue == expected
        assert costmodel.block_issue_cycles([opcode]) == expected
        counter = costmodel.CycleCounter()
        counter.issue(opcode)
        assert counter.cycles == expected


def _warp(*instrs, warp=0):
    return WarpStream(warp=warp, instrs=list(instrs))


def _alu(addr, opcode=Opcode.IADD, lanes=32):
    return WarpInstr(addr=addr, opcode=opcode, lanes=lanes)


def _load(addr, transactions=1, l1=0, l2=0, lanes=32):
    return WarpInstr(addr=addr, opcode=Opcode.LDG, lanes=lanes,
                     transactions=transactions, l1_misses=l1,
                     l2_misses=l2)


class TestSingleWarp:
    def test_dependent_alu_chain_pays_stall_bubbles(self):
        # IADD: issue 1, stall 4 -> second IADD issues at cycle 4
        sched = schedule_launch([[_warp(_alu(0), _alu(8))]])
        assert sched.issued == 2
        assert sched.busy_cycles == 2
        assert sched.cycles == 5           # issue@0, bubble 1..3, issue@4
        assert sched.bubble_cycles == 3
        assert sched.stall_cycles["exec_dep"] == 3

    def test_cycles_equal_busy_plus_bubbles(self):
        stream = _warp(_alu(0), _load(8, l1=1, l2=1), _alu(16), _alu(24),
                       _alu(32, opcode=Opcode.EXIT))
        sched = schedule_launch([[stream]])
        assert sched.cycles == sched.busy_cycles + \
            sum(b.cycles for b in sched.bubbles)
        assert sched.bubble_cycles == sum(b.cycles for b in sched.bubbles)

    def test_memory_latency_grades_by_cache_outcome(self):
        def time_with(l1, l2):
            # dep_distance=2: the *second* consumer waits on the load
            stream = _warp(_load(0, l1=l1, l2=l2), _alu(8), _alu(16))
            return schedule_launch([[stream]]).cycles

        hit, l2_hit, dram = time_with(0, 0), time_with(1, 0), time_with(1, 1)
        assert hit < l2_hit < dram
        # the DRAM wait dominates: the last IADD issues once the load
        # completes at DRAM_LATENCY
        assert dram == DRAM_LATENCY + 1
        assert l2_hit == L2_HIT_LATENCY + 1
        assert hit == L1_HIT_LATENCY + 1

    def test_memory_bubble_blames_the_load(self):
        stream = _warp(_load(0, l2=1), _alu(8), _alu(16))
        sched = schedule_launch([[stream]])
        (top, *_rest) = sched.top_bubbles(1)
        assert top.reason == "mem_dep"
        assert top.addr == 0
        assert top.opcode is Opcode.LDG
        assert sched.hotspots[0].stall_cycles > 0

    def test_diverged_transactions_occupy_the_port(self):
        one = schedule_launch([[_warp(_load(0, transactions=1))]])
        eight = schedule_launch([[_warp(_load(0, transactions=8))]])
        # 2 extra port cycles per extra transaction (the flat model's
        # TRANSACTION_COST), charged as busy time not bubbles
        assert eight.busy_cycles - one.busy_cycles == 2 * 7

    def test_scoreboard_slots_are_a_structural_limit(self):
        # more outstanding loads than slots, no consumers in range:
        # the 7th load stalls until the oldest barrier frees
        loads = [_load(8 * i, l2=1) for i in range(8)]
        sched = schedule_launch(
            [[_warp(*loads)]],
            SchedulerConfig(scoreboard_slots=6, dep_distance=100))
        assert sched.stall_cycles["scoreboard"] > 0
        unlimited = schedule_launch(
            [[_warp(*[_load(8 * i, l2=1) for i in range(8)])]],
            SchedulerConfig(scoreboard_slots=64, dep_distance=100))
        assert unlimited.cycles < sched.cycles


class TestMultiWarp:
    def test_second_warp_hides_memory_latency(self):
        def streams():
            return [_warp(_load(0, l2=1), _alu(8), _alu(16), warp=w)
                    for w in range(4)]

        solo = schedule_launch([streams()[:1]])
        quad = schedule_launch([streams()])
        assert quad.issued == 12
        # four warps overlap their DRAM waits: far cheaper than 4x solo
        assert quad.cycles < 4 * solo.cycles
        assert quad.bubble_cycles < 4 * solo.bubble_cycles

    def test_cta_barrier_waits_all_warps(self):
        def bar_stream(w, pre):
            instrs = [_alu(8 * i) for i in range(pre)]
            instrs.append(WarpInstr(addr=8 * pre, opcode=Opcode.BAR,
                                    lanes=32))
            instrs.append(_alu(8 * (pre + 1)))
            return WarpStream(warp=w, instrs=instrs)

        sched = schedule_launch([[bar_stream(0, 1), bar_stream(1, 5)]])
        assert sched.barrier_releases == 1
        assert sched.issued == 3 + 7

    def test_ctas_run_sequentially(self):
        one = schedule_launch([[_warp(_alu(0), _alu(8))]])
        two = schedule_launch([[_warp(_alu(0), _alu(8))],
                               [_warp(_alu(0), _alu(8))]])
        assert two.cycles == 2 * one.cycles

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies_issue_everything(self, policy):
        streams = [_warp(_load(0, l1=1), _alu(8), _alu(16), warp=w)
                   for w in range(3)]
        sched = schedule_launch([streams], SchedulerConfig(policy=policy))
        assert sched.policy == policy
        assert sched.issued == 9
        assert sum(h.issues for h in sched.hotspots.values()) == 9

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown issue policy"):
            SchedulerConfig(policy="fifo")

    def test_schedules_are_deterministic(self):
        streams = [[_warp(_load(0, l2=1), _alu(8), _alu(16), _alu(24),
                          warp=w) for w in range(4)]]
        a = schedule_launch(streams, SchedulerConfig(policy="lrr"))
        b = schedule_launch(streams, SchedulerConfig(policy="lrr"))
        assert a.cycles == b.cycles
        assert [(x.start, x.cycles, x.reason) for x in a.bubbles] == \
            [(x.start, x.cycles, x.reason) for x in b.bubbles]


class TestDivergenceSpans:
    def test_spans_are_maximal_runs(self):
        stream = _warp(
            _alu(0, lanes=32),
            WarpInstr(addr=8, opcode=Opcode.IADD, lanes=7, divergent=True),
            WarpInstr(addr=16, opcode=Opcode.IADD, lanes=3,
                      divergent=True),
            _alu(24, lanes=32),
            WarpInstr(addr=32, opcode=Opcode.IADD, lanes=9,
                      divergent=True),
        )
        assert divergence_spans(stream) == [(8, 2, 3), (32, 1, 9)]

    def test_divergent_instrs_counted_by_scheduler(self):
        stream = _warp(
            WarpInstr(addr=0, opcode=Opcode.IADD, lanes=5, divergent=True))
        sched = schedule_launch([[stream]])
        assert sched.divergent_instrs == 1
