"""Unit tests for memory spaces, the coalescer, caches, and the warp
divergence stack (plus hypothesis properties on coalescing invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, kepler_hierarchy
from repro.sim.coalescer import LINE_BYTES, coalesce
from repro.sim.errors import DeviceFault
from repro.sim.memory import (
    GLOBAL_BASE,
    LOCAL_BASE,
    Memory,
    is_global,
    is_local,
    is_shared,
    SHARED_BASE,
)
from repro.sim.warp import Warp, TokenKind


class TestMemory:
    def test_roundtrip_widths(self):
        mem = Memory(256)
        for width in (1, 2, 4, 8, 16):
            value = (1 << (8 * width)) - 3
            mem.write(16, width, value)
            assert mem.read(16, width) == value

    def test_little_endian(self):
        mem = Memory(16)
        mem.write(0, 4, 0x11223344)
        assert mem.read(0, 1) == 0x44
        assert mem.read(3, 1) == 0x11

    def test_bounds_checked(self):
        mem = Memory(32)
        with pytest.raises(DeviceFault):
            mem.read(30, 4)
        with pytest.raises(DeviceFault):
            mem.write(-1, 4, 0)

    def test_bytes_roundtrip(self):
        mem = Memory(64)
        mem.write_bytes(8, b"hello")
        assert mem.read_bytes(8, 5) == b"hello"

    def test_window_predicates(self):
        assert is_global(GLOBAL_BASE)
        assert not is_global(GLOBAL_BASE - 1)
        assert is_shared(SHARED_BASE + 100)
        assert is_local(LOCAL_BASE + 100)
        assert not is_local(GLOBAL_BASE)


class TestCoalescer:
    def test_same_line_coalesces_to_one(self):
        result = coalesce([GLOBAL_BASE + i for i in range(0, 32, 4)], 4)
        assert result.unique_lines == 1
        assert not result.is_diverged

    def test_unit_stride_full_warp(self):
        result = coalesce([GLOBAL_BASE + 4 * i for i in range(32)], 4)
        assert result.unique_lines == 4

    def test_fully_diverged(self):
        result = coalesce([GLOBAL_BASE + 1024 * i for i in range(32)], 4)
        assert result.unique_lines == 32
        assert result.is_fully_diverged

    def test_straddling_access_touches_two_lines(self):
        result = coalesce([GLOBAL_BASE + LINE_BYTES - 2], 4)
        assert result.unique_lines == 2

    def test_line_addresses_are_aligned(self):
        result = coalesce([GLOBAL_BASE + 7, GLOBAL_BASE + 77], 4)
        for line in result.line_addresses:
            assert line % LINE_BYTES == 0

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    def test_unique_lines_bounded_by_lanes(self, addrs):
        result = coalesce(addrs, 4)
        assert 1 <= result.unique_lines <= 2 * len(addrs)
        assert result.active_lanes == len(addrs)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    def test_aligned_word_accesses_never_split(self, addrs):
        aligned = [a & ~3 for a in addrs]
        result = coalesce(aligned, 4)
        assert result.unique_lines <= len(set(a // LINE_BYTES
                                              for a in aligned))
        assert result.unique_lines == len(set(a // LINE_BYTES
                                              for a in aligned))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=32),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_coalescing_is_permutation_invariant(self, addrs, width):
        forward = coalesce(addrs, width)
        backward = coalesce(list(reversed(addrs)), width)
        assert forward.unique_lines == backward.unique_lines
        assert set(forward.line_addresses) == set(backward.line_addresses)


class TestCache:
    def test_repeat_access_hits(self):
        cache = Cache(1024, ways=2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = Cache(2 * 32, ways=2)  # one set, two ways
        cache.access(0)
        cache.access(32 * 1)   # same set? with 1 set, every line maps there
        cache.access(32 * 2)   # evicts line 0
        assert not cache.access(0)
        assert cache.stats.evictions >= 1

    def test_miss_forwards_to_next_level(self):
        l1 = kepler_hierarchy()
        l1.access(0)
        assert l1.next_level.stats.accesses == 1
        l1.access(0)
        assert l1.next_level.stats.accesses == 1  # L1 hit absorbs

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, ways=3)

    def test_reset(self):
        cache = Cache(1024)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)


class TestWarpStack:
    def make_warp(self):
        return Warp(0, 8, 32, np.arange(32))

    def full(self):
        return np.ones(32, dtype=bool)

    def half(self):
        mask = np.zeros(32, dtype=bool)
        mask[:16] = True
        return mask

    def test_uniform_branch_no_push(self):
        warp = self.make_warp()
        warp.branch(self.full(), 10)
        assert warp.pc == 10 and warp.stack_depth == 0

    def test_divergent_branch_pushes_div(self):
        warp = self.make_warp()
        warp.branch(self.half(), 10)
        assert warp.pc == 10
        assert warp.stack_depth == 1
        assert warp.stack[0].kind is TokenKind.DIV
        assert (warp.active == self.half()).all()

    def test_sync_resumes_other_side_then_reconverges(self):
        warp = self.make_warp()
        warp.push_sync(20)
        warp.branch(self.half(), 10)
        warp.pc = 20
        warp.sync()                       # pops DIV: other half resumes
        assert warp.pc == 1               # fallthrough of the branch at pc 0
        assert (warp.active == ~self.half()).all()
        warp.pc = 20
        warp.sync()                       # pops SSY: full mask restored
        assert warp.active.all()
        assert warp.pc == 21

    def test_brk_parks_and_releases(self):
        warp = self.make_warp()
        warp.push_brk(50)
        warp.brk(self.half())
        assert (warp.active == ~self.half()).all()
        warp.brk(~self.half())
        assert warp.active.all()
        assert warp.pc == 50

    def test_brk_scrubs_tokens_above(self):
        warp = self.make_warp()
        warp.push_brk(50)
        warp.push_sync(30)               # an if inside the loop
        breaking = self.half()
        warp.brk(breaking)
        assert not (warp.stack[1].mask & breaking).any()
        assert (warp.stack[0].mask == breaking).all()

    def test_exit_retires_lanes_everywhere(self):
        warp = self.make_warp()
        warp.push_sync(30)
        exiting = self.half()
        warp.exit_lanes(exiting)
        assert not (warp.stack[0].mask & exiting).any()
        warp.exit_lanes(warp.active.copy())
        assert warp.done

    def test_brk_without_pbk_faults(self):
        warp = self.make_warp()
        with pytest.raises(DeviceFault):
            warp.brk(self.full())

    def test_sync_on_empty_stack_faults(self):
        warp = self.make_warp()
        with pytest.raises(DeviceFault):
            warp.sync()


class TestLaneIO:
    """The warp-vectorized ndarray view API (read_lanes/write_lanes)."""

    def test_read_lanes_matches_scalar_reads(self):
        mem = Memory(1024)
        rng = np.random.default_rng(3)
        mem.data[:] = rng.integers(0, 256, 1024, dtype=np.uint8)
        for width in (4, 8, 16):
            offsets = rng.integers(0, 1024 - width, 32).astype(np.int64)
            words = mem.read_lanes(offsets, width)
            assert words.shape == (32, width // 4)
            for lane, offset in enumerate(offsets):
                raw = mem.read(int(offset), width)
                for word in range(width // 4):
                    assert words[lane, word] == (raw >> (32 * word)) \
                        & 0xFFFFFFFF

    def test_write_lanes_roundtrip(self):
        mem = Memory(4096)
        rng = np.random.default_rng(4)
        for width in (4, 8, 16):
            offsets = (np.arange(32, dtype=np.int64) * width) + 64
            words = rng.integers(0, 1 << 32, (32, width // 4),
                                 dtype=np.uint64).astype(np.uint32)
            mem.write_lanes(offsets, width, words)
            assert np.array_equal(mem.read_lanes(offsets, width), words)
            for lane, offset in enumerate(offsets):   # scalar agreement
                raw = mem.read(int(offset), width)
                for word in range(width // 4):
                    assert (raw >> (32 * word)) & 0xFFFFFFFF \
                        == words[lane, word]

    def test_lanes_in_bounds(self):
        mem = Memory(256)
        ok = np.array([0, 100, 252], dtype=np.int64)
        assert mem.lanes_in_bounds(ok, 4)
        assert not mem.lanes_in_bounds(np.array([253], dtype=np.int64), 4)
        assert not mem.lanes_in_bounds(np.array([-1], dtype=np.int64), 4)
        assert mem.lanes_in_bounds(np.array([], dtype=np.int64), 4)


class TestCoalesceEquivalence:
    """The vectorized coalescer must agree with the scalar reference
    walk bit-exactly — including line ordering, which feeds the cache
    models and the binary trace bytes."""

    @given(addrs=st.lists(st.integers(0, 1 << 33), min_size=1,
                          max_size=32),
           width=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    @settings(max_examples=300, deadline=None)
    def test_matches_scalar_reference(self, addrs, width):
        from repro.sim.coalescer import _coalesce_scalar

        arr = np.asarray(addrs, dtype=np.uint64)
        assert coalesce(arr, width) == _coalesce_scalar(arr, width)

    def test_straddle_orders_both_lines(self):
        addrs = [LINE_BYTES - 2, 5 * LINE_BYTES]
        result = coalesce(addrs, 4)
        assert result.line_addresses == (0, LINE_BYTES, 5 * LINE_BYTES)

    def test_first_occurrence_order_preserved(self):
        addrs = [3 * LINE_BYTES, LINE_BYTES, 3 * LINE_BYTES + 4, 0]
        result = coalesce(addrs, 4)
        assert result.line_addresses == (3 * LINE_BYTES, LINE_BYTES, 0)


class TestAccessLinesEquivalence:
    """Batched Cache.access_lines == the one-at-a-time access loop:
    same miss count, same hit/miss/eviction stats, same LRU state, and
    identical next-level forwarding."""

    def test_matches_scalar_loop(self):
        rng = np.random.default_rng(9)
        batched = kepler_hierarchy()
        scalar = kepler_hierarchy()
        for _ in range(20):
            lines = (rng.integers(0, 3000, rng.integers(1, 40))
                     * LINE_BYTES).tolist()
            misses = batched.access_lines(lines)
            assert misses == sum(not scalar.access(a) for a in lines)
        for a, b in ((batched, scalar),
                     (batched.next_level, scalar.next_level)):
            assert a.stats == b.stats
            assert a._sets == b._sets

    def test_empty_and_ndarray_inputs(self):
        cache = Cache(1024, ways=2)
        assert cache.access_lines([]) == 0
        assert cache.access_lines(np.array([], dtype=np.int64)) == 0
        arr = np.array([0, 32, 0, 64], dtype=np.int64)
        assert cache.access_lines(arr) == 3
        assert cache.stats.hits == 1
