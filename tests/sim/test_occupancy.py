"""Tests for the SM occupancy calculator."""

import pytest

from repro.sim.occupancy import (
    KEPLER_SM,
    Occupancy,
    occupancy,
    occupancy_impact_of_instrumentation,
)


class TestOccupancy:
    def test_small_kernel_is_warp_limited(self):
        result = occupancy(threads_per_cta=256, regs_per_thread=16)
        assert result.warps_per_sm == KEPLER_SM.max_warps
        assert result.fraction == 1.0

    def test_register_hog_reduces_occupancy(self):
        lean = occupancy(256, 32)
        fat = occupancy(256, 128)
        assert fat.warps_per_sm < lean.warps_per_sm
        assert fat.limiter == "registers"

    def test_shared_memory_can_limit(self):
        result = occupancy(64, 16, shared_per_cta=24 << 10)
        assert result.limiter == "shared"
        assert result.ctas_per_sm == 2

    def test_tiny_ctas_hit_cta_limit(self):
        result = occupancy(32, 16)
        assert result.limiter == "ctas"
        assert result.ctas_per_sm == KEPLER_SM.max_ctas

    def test_bad_cta_size_rejected(self):
        with pytest.raises(ValueError):
            occupancy(0, 16)
        with pytest.raises(ValueError):
            occupancy(2048, 16)

    def test_monotonic_in_registers(self):
        previous = KEPLER_SM.max_warps + 1
        for regs in (16, 32, 64, 96, 128, 255):
            warps = occupancy(256, regs).warps_per_sm
            assert warps <= previous
            previous = warps


class TestInstrumentationImpact:
    def test_sassi_register_cap_preserves_occupancy(self):
        """Instrumented kernels reuse the ABI registers, so SASSI's
        16-register handler cap keeps occupancy essentially intact."""
        from repro.backend import ptxas
        from repro.sassi import SassiRuntime, spec_from_flags
        from repro.sim import Device
        from tests.conftest import build_vecadd

        baseline = ptxas(build_vecadd())
        device = Device()
        runtime = SassiRuntime(device)
        runtime.register_before_handler(lambda ctx: None)
        instrumented = runtime.compile(
            build_vecadd(),
            spec_from_flags("-sassi-inst-before=all "
                            "-sassi-before-args=mem-info"))
        ratio = occupancy_impact_of_instrumentation(
            baseline, instrumented, threads_per_cta=256)
        assert ratio >= 0.75
        # the register footprint grows by at most the ABI registers
        assert instrumented.num_regs <= baseline.num_regs + 8
