"""Regression tests for predicate file pack/unpack (P2R/R2P).

R2P once set P_i from ``(value >> i) != 0`` instead of bit *i*, which
silently corrupted low predicates whenever a higher one was set —
caught by the nw workload running under instrumentation (the SASSI
pred spill/restore round-trips the whole file at every site)."""

import numpy as np
import pytest

from repro.isa import parse_kernel
from repro.sim import Device, Dim3
from repro.sim.executor import CTAContext, Executor
from repro.sim.warp import Warp


def run_snippet(body: str, setup):
    device = Device()
    kernel = device.load_kernel(parse_kernel(f".kernel t\n{body}\nEXIT ;"))
    executor = Executor(device)
    executor._kernel = kernel
    cta = CTAContext((0, 0, 0), 0)
    warp = Warp(0, 16, 32, np.arange(32))
    setup(warp)
    from repro.sim.costmodel import CycleCounter

    executor._run_warp(warp, cta, CycleCounter())
    return warp


class TestP2RR2P:
    @pytest.mark.parametrize("pattern", [
        0b0000001, 0b1111110, 0b0101010, 0b1000000, 0b0001110,
    ])
    def test_roundtrip_preserves_every_pattern(self, pattern):
        def setup(warp):
            for index in range(7):
                warp.preds[index, :] = bool(pattern & (1 << index))

        warp = run_snippet(
            "P2R R3, 0x7f ;\n"
            # scramble the predicate file, then restore from R3
            "ISETP.EQ.S32.AND P0, PT, RZ, RZ, PT ;\n"
            "ISETP.NE.S32.AND P1, PT, RZ, RZ, PT ;\n"
            "R2P R3, 0x7f ;",
            setup)
        for index in range(7):
            expected = bool(pattern & (1 << index))
            assert warp.preds[index, 0] == expected, f"P{index}"

    def test_r2p_respects_mask(self):
        def setup(warp):
            warp.preds[0, :] = True
            warp.preds[1, :] = True
            warp.regs[3, :] = 0  # would clear both without a mask

        warp = run_snippet("R2P R3, 0x2 ;", setup)
        assert warp.preds[0, 0]          # untouched (mask bit clear)
        assert not warp.preds[1, 0]      # cleared (mask bit set)

    def test_p2r_packs_per_lane(self):
        def setup(warp):
            warp.preds[2, :] = np.arange(32) % 2 == 0

        warp = run_snippet("P2R R5, 0x7f ;", setup)
        assert warp.regs[5, 0] & 0b100
        assert not warp.regs[5, 1] & 0b100
