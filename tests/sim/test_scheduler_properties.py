"""Hypothesis properties of the cycle-stepped warp scheduler.

The satellite invariants:

* **work conservation** — every warp instruction issues exactly once,
  whatever the streams, policy, or barrier placement;
* **cycle accounting** — ``cycles == busy + bubbles`` exactly, and the
  per-reason stall totals sum to the bubble total;
* **policy equivalence** — GTO and loose round-robin issue the same
  instruction multiset (same per-address issue counts, same busy
  cycles); only the schedule, and therefore the cycle count, differs;
* **monotonicity** — making one instruction slower (a worse cache
  outcome, or more serialized transactions) never speeds up a
  single-warp schedule.  (Multi-warp schedulers are subject to Graham
  scheduling anomalies, so the property is only sound for one warp.)
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import Opcode
from repro.sim.scheduler import (
    SchedulerConfig,
    WarpInstr,
    WarpStream,
    schedule_launch,
)

_ALU_OPS = (Opcode.IADD, Opcode.FMUL, Opcode.FFMA, Opcode.MOV,
            Opcode.ISETP, Opcode.MUFU, Opcode.SHL)
_MEM_OPS = (Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.LDC)


@st.composite
def instrs(draw, index):
    opcode = draw(st.sampled_from(_ALU_OPS + _MEM_OPS + (Opcode.BAR,)))
    instr = WarpInstr(addr=index * 8, opcode=opcode,
                      lanes=draw(st.integers(1, 32)))
    if opcode in _MEM_OPS:
        instr.transactions = draw(st.integers(1, 8))
        instr.l1_misses = draw(st.integers(0, instr.transactions))
        instr.l2_misses = draw(st.integers(0, instr.l1_misses))
    return instr


@st.composite
def ctas(draw):
    n_warps = draw(st.integers(1, 4))
    streams = []
    for w in range(n_warps):
        length = draw(st.integers(1, 12))
        streams.append(WarpStream(
            warp=w, instrs=[draw(instrs(i)) for i in range(length)]))
    return [streams]


def _total_instrs(launch_ctas):
    return sum(len(s.instrs) for streams in launch_ctas
               for s in streams)


@settings(max_examples=60, deadline=None)
@given(launch=ctas(), policy=st.sampled_from(["gto", "lrr"]))
def test_work_conservation_and_accounting(launch, policy):
    sched = schedule_launch(launch, SchedulerConfig(policy=policy))
    total = _total_instrs(launch)
    # every instruction issues exactly once
    assert sched.issued == total
    assert sum(h.issues for h in sched.hotspots.values()) == total
    # exact cycle accounting
    assert sched.cycles == sched.busy_cycles + \
        sum(b.cycles for b in sched.bubbles)
    assert sum(sched.stall_cycles.values()) == sched.bubble_cycles
    assert all(b.cycles > 0 for b in sched.bubbles)


@settings(max_examples=60, deadline=None)
@given(launch=ctas())
def test_gto_and_lrr_issue_the_same_multiset(launch):
    gto = schedule_launch(launch, SchedulerConfig(policy="gto"))
    lrr = schedule_launch(launch, SchedulerConfig(policy="lrr"))
    # same per-address issue counts and issue-port work...
    assert {a: h.issues for a, h in gto.hotspots.items()} == \
        {a: h.issues for a, h in lrr.hotspots.items()}
    assert gto.busy_cycles == lrr.busy_cycles
    assert gto.issued == lrr.issued
    assert gto.barrier_releases == lrr.barrier_releases
    # ...the schedule (cycles) may legitimately differ


@st.composite
def single_warp(draw):
    length = draw(st.integers(2, 15))
    stream = WarpStream(
        warp=0, instrs=[draw(instrs(i)) for i in range(length)])
    victim = draw(st.integers(0, length - 1))
    # pin the victim to a load in BOTH schedules; the slowdown below
    # only worsens its memory behavior (same opcode, same stall entry)
    instr = stream.instrs[victim]
    instr.opcode = Opcode.LDG
    instr.transactions = max(instr.transactions, 1)
    return [[stream]], victim


@settings(max_examples=60, deadline=None)
@given(data=single_warp())
def test_single_warp_added_stall_is_monotone(data):
    launch, victim = data
    base = schedule_launch(launch).cycles
    instr = launch[0][0].instrs[victim]
    # strictly worse: one more serialized transaction, worst cache
    # outcome — every affected delay is monotone for a single warp
    instr.transactions += 1
    instr.l1_misses = instr.transactions
    instr.l2_misses = instr.transactions
    slowed = schedule_launch(launch).cycles
    assert slowed >= base


@settings(max_examples=30, deadline=None)
@given(launch=ctas())
def test_lengthening_a_single_warp_stream_is_monotone(launch):
    if len(launch[0]) != 1:
        launch = [[launch[0][0]]]
    base = schedule_launch(launch).cycles
    launch[0][0].instrs.append(
        WarpInstr(addr=8_000, opcode=Opcode.IADD, lanes=32))
    longer = schedule_launch(launch).cycles
    assert longer > base
