"""CLI exit codes, one-line diagnostics, and the telemetry flags."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.kernelir.ptxtext import emit_ptx
from repro.telemetry import TELEMETRY

from tests.conftest import build_vecadd


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


@pytest.fixture
def ptx_file(tmp_path):
    path = tmp_path / "vecadd.ptx"
    path.write_text(emit_ptx(build_vecadd()))
    return str(path)


def _one_line_error(capsys) -> str:
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, f"expected one diagnostic line, got: {err!r}"
    assert lines[0].startswith("repro: ")
    assert "Traceback" not in err
    return lines[0]


class TestErrorExits:
    def test_unknown_workload(self, capsys):
        assert main(["run", "no/such(workload)"]) == 2
        assert "no/such(workload)" in _one_line_error(capsys)

    def test_unknown_workload_via_workloads_run(self, capsys):
        assert main(["workloads", "--run", "nope"]) == 2
        assert "nope" in _one_line_error(capsys)

    def test_malformed_sassi_flags(self, ptx_file, capsys):
        assert main(["compile", ptx_file,
                     "--sassi=-sassi-bogus=wat"]) == 2
        assert "bad --sassi flags" in _one_line_error(capsys)

    def test_missing_input_file(self, capsys):
        assert main(["compile", "/no/such/file.ptx"]) == 2
        assert "cannot read" in _one_line_error(capsys)

    def test_unparseable_input_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.ptx"
        bad.write_text("this is not ptx\n")
        assert main(["compile", str(bad)]) == 2
        assert "cannot parse" in _one_line_error(capsys)

    def test_unwritable_trace_path(self, capsys):
        assert main(["run", "vectoradd",
                     "--trace", "/no-such-dir-xyz/out.json"]) == 2
        message = _one_line_error(capsys)
        assert "cannot write" in message
        # failed before doing any work: nothing was recorded
        assert TELEMETRY.counters == {}

    def test_unwritable_trace_path_on_run_all(self, capsys):
        assert main(["run-all", "--quick",
                     "--trace", "/no-such-dir-xyz/out.json"]) == 2
        assert "cannot write" in _one_line_error(capsys)

    def test_timeline_subcommand_on_missing_file(self, capsys):
        assert main(["timeline", "/no/such/trace.json"]) == 2
        assert "cannot read" in _one_line_error(capsys)

    def test_timeline_subcommand_on_invalid_json(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["timeline", str(garbage)]) == 2
        assert "not valid trace JSON" in _one_line_error(capsys)

    def test_timeline_subcommand_on_wrong_schema(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text("[1, 2, 3]")
        assert main(["timeline", str(wrong)]) == 2
        assert "traceEvents" in _one_line_error(capsys)


class TestRunWithTelemetry:
    def test_metrics_and_trace_match_kernel_stats(self, tmp_path, capsys):
        """Acceptance path: ``repro run vectoradd --metrics --trace``
        emits a valid Chrome trace and a summary whose per-opcode-class
        counts sum to the executor's reported warp instructions."""
        trace_path = tmp_path / "out.json"
        assert main(["run", "vectoradd", "--metrics",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "vectoradd: ok" in out

        match = re.search(r"\(([\d,]+) warp instructions", out)
        reported = int(match.group(1).replace(",", ""))

        doc = json.loads(trace_path.read_text())
        names = {event["name"] for event in doc["traceEvents"]
                 if event.get("ph") == "X"}
        assert {"run", "compile", "execute", "launch"} <= names
        counter_event = next(event for event in doc["traceEvents"]
                             if event.get("ph") == "C")
        instr = {key: value
                 for key, value in counter_event["args"].items()
                 if key.startswith("instr.")}
        assert sum(instr.values()) == reported

        # the --metrics text summary shows the same counters
        summary_counts = {}
        for line in out.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[0].startswith("instr."):
                summary_counts[parts[0]] = int(parts[1])
        assert summary_counts == instr

    def test_jsonl_export(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["run", "vectoradd", "--jsonl", str(path)]) == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records[0]["type"] == "manifest"
        assert records[0]["workload"] == "vectoradd"
        assert any(record["type"] == "span" for record in records)

    def test_timeline_subcommand_reads_back_run_output(self, tmp_path,
                                                       capsys):
        trace_path = tmp_path / "out.json"
        assert main(["run", "vectoradd", "--trace",
                     str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["timeline", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "launch" in out
        assert "manifest:" in out

    def test_run_leaves_telemetry_disabled(self, tmp_path):
        assert main(["run", "vectoradd"]) == 0
        assert not TELEMETRY.enabled
