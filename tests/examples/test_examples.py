"""The ``examples/`` scripts run under pytest: every script imports
cleanly, and each executes end-to-end on small inputs."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "examples")

EXAMPLE_NAMES = sorted(
    name[:-3] for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py"))


def load_example(name):
    """Import one example script as a throwaway module (its ``main`` is
    guarded by ``if __name__``, so import is side-effect free)."""
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_imports(name):
    module = load_example(name)
    assert hasattr(module, "main"), f"{name}.py has no main()"


def test_examples_inventory():
    """The scripts this file exercises actually exist (guards against
    renames silently dropping coverage)."""
    assert {"quickstart", "memtrace_cachesim", "value_profile",
            "memory_divergence_study", "branch_divergence_study",
            "error_injection_campaign"} <= set(EXAMPLE_NAMES)


class TestSmallInputExecution:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "verified" in out or "OK" in out or out

    def test_memtrace_cachesim(self, capsys):
        # vectoradd instead of the default spmv: same code path, ~4x
        # faster
        load_example("memtrace_cachesim").main(workload="vectoradd")
        out = capsys.readouterr().out
        assert "warp accesses" in out
        assert "L1" in out

    def test_value_profile(self, capsys):
        load_example("value_profile").main()
        assert capsys.readouterr().out

    def test_memory_divergence_study(self, capsys):
        load_example("memory_divergence_study").main()
        out = capsys.readouterr().out
        assert out

    def test_branch_divergence_profile(self, monkeypatch, capsys):
        # one dataset, one handler kind — main() would run five full
        # bfs profiles
        module = load_example("branch_divergence_study")
        row = module.profile("UT", kind="warp")
        assert row.summary.dynamic_branches > 0

    def test_error_injection_campaign(self, monkeypatch, capsys):
        # the script's flow with a small workload and 2 injections
        # (the default is 30 injections against rodinia/hotspot)
        module = load_example("error_injection_campaign")
        from repro.workloads import make as real_make

        monkeypatch.setattr(module, "make",
                            lambda name: real_make("vectoradd"))
        module.main(injections=2)
        out = capsys.readouterr().out
        assert "eligible dynamic error sites" in out
        assert "outcome distribution:" in out
