#!/usr/bin/env python
"""Case Study III as a script: value profiling with the Section 7.2
per-instruction dump format.

Run:  python examples/value_profile.py
"""

from repro.handlers import ValueProfiler
from repro.isa.asmtext import format_instruction
from repro.sim import Device
from repro.workloads import make


def main():
    workload = make("parboil/sad")
    device = Device()
    profiler = ValueProfiler(device)
    kernel = profiler.compile(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)

    summary = profiler.summary()
    print(f"{workload.full_name}:")
    print(f"  dynamic: {summary.dynamic_const_bits_pct:.0f}% constant "
          f"bits, {summary.dynamic_scalar_pct:.0f}% scalar writes")
    print(f"  static : {summary.static_const_bits_pct:.0f}% constant "
          f"bits, {summary.static_scalar_pct:.0f}% scalar writes\n")

    print("hottest instructions (Section 7.2 dump; * marks scalar, "
          "T marks toggling bits):")
    profiles = sorted((p for p in profiler.profiles() if p.dsts),
                      key=lambda p: -p.weight)[:5]
    for profile in profiles:
        instr = None
        for kern in device.program.kernels.values():
            try:
                instr = kern.instructions[
                    kern.index_of_pc(profile.address)]
            except (ValueError, IndexError):
                continue
        title = format_instruction(instr) if instr is not None else "?"
        print(f"\n  [{profile.weight:>6,}x] {title}")
        for line in profiler.dump(profile).splitlines():
            print(f"      {line}")


if __name__ == "__main__":
    main()
