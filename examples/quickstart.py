#!/usr/bin/env python
"""Quickstart: instrument a kernel with the paper's Figure 3 handler.

Walks the full SASSI workflow end to end:

1. author a CUDA-like kernel with :class:`KernelBuilder`;
2. register an instrumentation handler (the Figure 3 opcode
   categorizer) with the runtime — the ``nvlink`` step;
3. compile with ``ptxas`` + SASSI as the final pass, selecting *where*
   (before all instructions) and *what* (memory info) via the same flag
   syntax the paper uses;
4. launch on the simulated GPU and marshal the counters off the device
   with the CUPTI-analog callbacks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.handlers import OpcodeHistogram
from repro.isa.asmtext import format_kernel
from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Device, Dim3


def build_saxpy():
    b = KernelBuilder("saxpy", [("n", Type.U32), ("alpha", Type.F32),
                                ("x", PTR), ("y", PTR)])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        xv = b.load_f32(b.gep(b.param("x"), i, 4))
        yv = b.load_f32(b.gep(b.param("y"), i, 4))
        b.store(b.gep(b.param("y"), i, 4),
                b.fma(b.param("alpha"), xv, yv))
    return b.finish()


def main():
    device = Device()
    histogram = OpcodeHistogram(device)      # registers the handler
    kernel = histogram.compile(build_saxpy())

    print("=== instrumented SASS (first 24 instructions) ===")
    listing = format_kernel(kernel).splitlines()
    print("\n".join(listing[:30]))
    print(f"... {len(kernel.instructions)} instructions total\n")

    n = 1 << 12
    rng = np.random.default_rng(0)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    px, py = device.alloc_array(x), device.alloc_array(y)
    stats = device.launch(kernel, Dim3((n + 127) // 128), Dim3(128),
                          [n, 2.0, px, py])

    result = device.read_array(py, n, np.float32)
    assert np.allclose(result, 2.0 * x + y), "wrong result!"
    print("saxpy result verified under instrumentation\n")

    print("=== Figure 3 dynamic instruction categories ===")
    for category, count in histogram.totals().items():
        print(f"  {category:18s} {count:>12,}")
    print(f"\nkernel stats: {stats.warp_instructions:,} warp instructions "
          f"({stats.sassi_warp_instructions:,} injected), "
          f"{stats.handler_calls:,} handler calls, "
          f"{stats.cycles:,} simulated cycles")


if __name__ == "__main__":
    main()
