#!/usr/bin/env python
"""Case Study I as a script: per-branch divergence profiling of the
Parboil bfs workload on two datasets (the paper's Figure 5 experiment).

Demonstrates both handler styles: the warp-level handler used by the
study driver, and the lock-step *thread-level* transliteration of the
paper's Figure 4 CUDA code (they produce identical counters).

Run:  python examples/branch_divergence_study.py
"""

from repro.backend import ptxas
from repro.handlers.branch_profiler import BranchProfiler
from repro.sim import Device
from repro.studies.casestudy1 import render_figure5, Table1Row
from repro.workloads import make


def profile(dataset: str, kind: str) -> Table1Row:
    workload = make(f"parboil/bfs({dataset})")
    device = Device()
    profiler = BranchProfiler(device, kind=kind)
    kernel = profiler.compile(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)
    return Table1Row(benchmark=workload.full_name,
                     summary=profiler.summary(),
                     branches=profiler.branches())


def main():
    for dataset in ("NY", "UT"):
        row = profile(dataset, kind="warp")
        print(render_figure5(row))
        summary = row.summary
        print(f"  -> {summary.dynamic_divergent:,} of "
              f"{summary.dynamic_branches:,} dynamic branches diverged "
              f"({summary.dynamic_pct:.1f}%)\n")

    # cross-check: the thread-level Figure 4 handler agrees exactly
    warp_row = profile("NY", kind="warp")
    thread_row = profile("NY", kind="thread")
    warp_counts = {b.address: b.total for b in warp_row.branches}
    thread_counts = {b.address: b.total for b in thread_row.branches}
    assert warp_counts == thread_counts, "handler styles disagree!"
    print("warp-level and thread-level (Figure 4) handlers agree on "
          f"{len(warp_counts)} branches")


if __name__ == "__main__":
    main()
