#!/usr/bin/env python
"""Case Study II as a script: the miniFE CSR-vs-ELL experiment
(the paper's Figure 8) plus the Figure 7 PMF summary.

Shows how a *data-format* decision surfaces as memory-address
divergence: the identical spmv computation run over CSR (row-major
indirection) and ELL (column-major padded) storage.

Run:  python examples/memory_divergence_study.py
"""

from repro.handlers import MemoryDivergenceProfiler
from repro.sim import Device
from repro.studies.report import heatmap, pmf_sparkline
from repro.workloads import make


def profile(name: str):
    workload = make(name)
    device = Device()
    profiler = MemoryDivergenceProfiler(device)
    kernel = profiler.compile(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)
    return profiler


def main():
    for variant in ("CSR", "ELL"):
        name = f"miniFE({variant})"
        profiler = profile(name)
        print(heatmap(profiler.matrix(),
                      title=f"{name}: occupancy (x) vs unique 32B lines "
                            "(y)"))
        print(f"  PMF: {pmf_sparkline(profiler.pmf())}")
        print(f"  diverged warp accesses: "
              f"{100 * profiler.diverged_fraction():.0f}%\n")
    print("Expected shape (paper Figure 8): CSR concentrates on the\n"
          "diagonal (as many unique lines as active threads); ELL's\n"
          "unique-line distribution is shifted low (coalesced).")


if __name__ == "__main__":
    main()
