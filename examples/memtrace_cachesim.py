#!/usr/bin/env python
"""Section 9.4 extension: "driving other simulators".

SASSI collects a low-level memory trace from a real run; the trace is
then replayed *offline* through a cache-hierarchy model — exactly the
workflow the paper sketches ("a memory trace collected by SASSI can be
used to drive a memory hierarchy simulator").

The experiment compares two cache configurations on the same trace,
something the instrumented application never needs to be re-run for.

Run:  python examples/memtrace_cachesim.py
"""

from repro.handlers import MemoryTracer
from repro.sim import Device
from repro.sim.cache import Cache
from repro.workloads import make


def collect_trace(name: str):
    workload = make(name)
    device = Device()
    tracer = MemoryTracer(device)
    kernel = tracer.compile(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)
    return tracer


def main(workload: str = "parboil/spmv(small)"):
    from repro.trace.format import TAG_MEM

    tracer = collect_trace(workload)
    manifest = tracer.flush()
    accesses = sum(len(r.line_addresses) for r in tracer.records())
    print(f"collected {manifest.count(TAG_MEM):,} warp accesses "
          f"({accesses:,} line transactions)\n")

    for config_name, size_kib, ways in (("small L1", 8, 2),
                                        ("Kepler-ish L1", 16, 4),
                                        ("big L1", 64, 8)):
        l2 = Cache(256 << 10, ways=16, name="L2")
        l1 = Cache(size_kib << 10, ways=ways, name="L1", next_level=l2)
        tracer.replay_through(l1)
        print(f"{config_name:>14s}: L1 {100 * l1.stats.hit_rate:5.1f}% "
              f"hit ({l1.stats.hits:,}/{l1.stats.accesses:,}), "
              f"L2 {100 * l2.stats.hit_rate:5.1f}% hit")


if __name__ == "__main__":
    main()
