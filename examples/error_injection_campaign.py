#!/usr/bin/env python
"""Case Study IV as a script: a small error-injection campaign
(the paper's Section 8 flow: profile -> select -> inject -> classify).

Run:  python examples/error_injection_campaign.py [injections]
"""

import sys

from repro.handlers import ErrorInjectionCampaign
from repro.workloads import make


def main(injections: int = 30):
    workload = make("rodinia/hotspot")
    campaign = ErrorInjectionCampaign(workload,
                                      num_injections=injections,
                                      seed=7)
    golden = campaign.golden_run()
    total = campaign.profile()
    print(f"golden run: output {golden.shape}, "
          f"{total:,} eligible dynamic error sites\n")

    result = campaign.run(injections)
    for record in result.records[:10]:
        print(f"  event {record.target_event:>8,}  "
              f"{record.outcome.value:<22s}  {record.description}")
    if len(result.records) > 10:
        print(f"  ... {len(result.records) - 10} more\n")

    print("outcome distribution:")
    for outcome, fraction in result.fractions().items():
        if fraction:
            print(f"  {outcome.value:<24s} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
