"""Regenerates Figure 10 (error-injection outcome distribution).

The paper performs 1 000 injections per application; set REPRO_FULL=1
for 200 per app here (still minutes, not hours); the default 25 per app
keeps the bench quick while preserving the qualitative split."""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.handlers.error_injection import InjectionOutcome
from repro.studies import casestudy4
from repro.workloads import FIGURE10_BENCHMARKS

QUICK = ["rodinia/nn", "parboil/histo", "parboil/sad",
         "rodinia/pathfinder"]


@pytest.mark.benchmark(group="figure10")
def test_figure10_error_injection(run_study):
    benchmarks = FIGURE10_BENCHMARKS if full_run() else QUICK
    injections = 200 if full_run() else 20
    results = run_study(casestudy4.run, benchmarks, injections)
    print("\n" + casestudy4.render_figure10(results))

    total = sum(len(r.records) for r in results)
    assert total == injections * len(benchmarks)
    counts = {}
    for result in results:
        for outcome, count in result.outcome_counts().items():
            counts[outcome] = counts.get(outcome, 0) + count
    masked = counts.get(InjectionOutcome.MASKED, 0)
    crashes = counts.get(InjectionOutcome.CRASH, 0) \
        + counts.get(InjectionOutcome.HANG, 0)
    sdc = counts.get(InjectionOutcome.SDC_OUTPUT, 0) \
        + counts.get(InjectionOutcome.SDC_STDOUT, 0)
    # paper shape: masking is the most common outcome; crashes are a
    # minority; SDCs exist.  (Absolute fractions shift with our scaled
    # kernels: see EXPERIMENTS.md.)
    assert masked > 0
    assert crashes < total / 2
    assert masked + crashes + sdc \
        + counts.get(InjectionOutcome.FAILURE_SYMPTOM, 0) == total
