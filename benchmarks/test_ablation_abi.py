"""Design-choice ablation benches: ABI call sequences vs inline
counters, and the Section 9.1 redundant-spill optimization."""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.studies import ablation

QUICK = ["parboil/sgemm(small)", "parboil/spmv(small)"]
FULL = QUICK + ["parboil/stencil", "rodinia/hotspot", "rodinia/nn"]


@pytest.mark.benchmark(group="ablation")
def test_abi_vs_inline_counter(run_study):
    names = FULL if full_run() else QUICK
    results = run_study(lambda: [ablation.run_ablation(n) for n in names])
    print("\n" + ablation.render(results))

    for result in results:
        # the ABI sequence is far heavier than the inline counter --
        # the cost the paper accepts for CUDA-authored handlers
        assert result.abi_ratio > result.inline_ratio, result.benchmark
        assert result.abi_injected > 3 * result.inline_injected
        # spill skipping helps but keeps the ABI structure
        assert result.spillopt_ratio <= result.abi_ratio + 1e-6
