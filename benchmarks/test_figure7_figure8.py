"""Regenerates Figure 7 (unique-cacheline PMFs) and Figure 8 (miniFE
CSR vs ELL occupancy × divergence matrices)."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_run
from repro.studies import casestudy2
from repro.workloads import FIGURE7_BENCHMARKS

QUICK = [
    "parboil/bfs(NY)", "parboil/spmv(small)", "rodinia/bfs",
    "miniFE(ELL)", "miniFE(CSR)",
]


@pytest.mark.benchmark(group="figure7")
def test_figure7_memory_divergence_pmf(run_study):
    benchmarks = FIGURE7_BENCHMARKS if full_run() else QUICK
    results = run_study(casestudy2.run, benchmarks)
    print("\n" + casestudy2.render_figure7(results))

    by_name = {r.benchmark: r for r in results}
    csr = by_name["miniFE(CSR)"]
    ell = by_name["miniFE(ELL)"]
    # the paper's headline: CSR makes most accesses from high-divergence
    # warps, ELL from low-divergence warps
    csr_high = float(csr.pmf[8:].sum())
    ell_low = float(ell.pmf[:8].sum())
    assert csr_high > 0.5, f"CSR high-divergence mass {csr_high:.2f}"
    assert ell_low > 0.6, f"ELL low-divergence mass {ell_low:.2f}"
    # spmv is address-diverged (irregular gathers)
    spmv = by_name["parboil/spmv(small)"]
    assert float(spmv.pmf[8:].sum()) > 0.5


@pytest.mark.benchmark(group="figure8")
def test_figure8_minife_matrices(run_study):
    results = run_study(casestudy2.run, ["miniFE(CSR)", "miniFE(ELL)"])
    print("\n" + casestudy2.render_figure8(results))

    csr = next(r for r in results if r.benchmark == "miniFE(CSR)")
    ell = next(r for r in results if r.benchmark == "miniFE(ELL)")
    # CSR concentrates near the diagonal: unique lines track occupancy
    occupancy, unique = np.nonzero(csr.matrix)
    weights = csr.matrix[occupancy, unique].astype(np.float64)
    near_diagonal = (np.abs(occupancy - unique) <= 8)
    assert (weights[near_diagonal].sum() / weights.sum()) > 0.5
    # ELL: the distribution of unique lines is shifted low
    ell_occupancy, ell_unique = np.nonzero(ell.matrix)
    ell_weights = ell.matrix[ell_occupancy, ell_unique].astype(np.float64)
    mean_unique_ell = (ell_unique * ell_weights).sum() / ell_weights.sum()
    mean_unique_csr = (unique * weights).sum() / weights.sum()
    assert mean_unique_ell < 0.5 * mean_unique_csr
