"""Benchmark harness configuration.

Every paper table/figure has a bench that regenerates it.  Each bench
runs its study once under pytest-benchmark (``pedantic`` with one round:
the studies are deterministic and their cost *is* the measurement) and
prints the regenerated rows/series with ``-s``.

Set ``REPRO_FULL=1`` to run each study over the paper's full benchmark
list; the default uses representative subsets so the whole suite
finishes in a few minutes.
"""

from __future__ import annotations

import os

import pytest


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def run_study(benchmark):
    """Run a study callable once under the benchmark timer and emit its
    rendered output."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        return result

    return runner
