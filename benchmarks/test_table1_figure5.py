"""Regenerates Table 1 (branch divergence) and Figure 5 (per-branch
distributions for Parboil bfs on two datasets)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.studies import casestudy1
from repro.workloads import TABLE1_BENCHMARKS

QUICK = [
    "parboil/bfs(1M)", "parboil/bfs(UT)", "parboil/sgemm(small)",
    "parboil/tpacf(small)", "rodinia/heartwall", "rodinia/srad_v1",
    "rodinia/srad_v2", "rodinia/streamcluster",
]


@pytest.mark.benchmark(group="table1")
def test_table1_branch_divergence(run_study):
    benchmarks = TABLE1_BENCHMARKS if full_run() else QUICK
    rows = run_study(casestudy1.run, benchmarks)
    print("\n" + casestudy1.render_table1(rows))

    by_name = {r.benchmark: r.summary for r in rows}
    # paper shape: sgemm and streamcluster are fully convergent
    assert by_name["parboil/sgemm(small)"].dynamic_divergent == 0
    assert by_name["rodinia/streamcluster"].dynamic_divergent == 0
    # srad_v2 diverges far more than srad_v1 (21.3% vs 0.5% in the paper)
    assert by_name["rodinia/srad_v2"].dynamic_pct \
        > 5 * max(by_name["rodinia/srad_v1"].dynamic_pct, 0.1)
    # heartwall and tpacf show abundant divergence (42% / 25%)
    assert by_name["rodinia/heartwall"].dynamic_pct > 20
    assert by_name["parboil/tpacf(small)"].dynamic_pct > 15


@pytest.mark.benchmark(group="figure5")
def test_figure5_per_branch_distributions(run_study):
    rows = run_study(casestudy1.run,
                     ["parboil/bfs(1M)", "parboil/bfs(UT)"])
    for row in rows:
        print("\n" + casestudy1.render_figure5(row))
    # the paper: a small number of branches dominate the divergence
    for row in rows:
        divergent = sorted((b.divergent for b in row.branches),
                           reverse=True)
        assert divergent[0] > 0
        top_two = sum(divergent[:2])
        assert top_two >= 0.6 * sum(divergent)
