"""Regenerates Table 3 (instrumentation overheads of the four case
studies) plus the Section 9.1 ABI/spill-cost observation."""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.studies import overhead
from repro.workloads import TABLE3_BENCHMARKS

QUICK = [
    "parboil/sgemm(small)", "parboil/spmv(small)", "rodinia/nn",
    "parboil/tpacf(small)", "rodinia/heartwall", "rodinia/gaussian",
]


@pytest.mark.benchmark(group="table3")
def test_table3_overheads(run_study):
    benchmarks = TABLE3_BENCHMARKS if full_run() else QUICK
    rows = run_study(overhead.run, benchmarks)
    print("\n" + overhead.render_table3(rows))

    for row in rows:
        cells = row.cells
        # the paper's ordering: branch-only instrumentation is cheapest,
        # value profiling / error injection (every register writer) are
        # the most expensive
        assert cells["branches"].kernel_ratio \
            <= cells["value"].kernel_ratio + 0.5, row.benchmark
        assert cells["value"].kernel_ratio > 2, row.benchmark
        # overheads are bounded sanely (paper max: 722x kernel-level)
        assert cells["error"].kernel_ratio < 1000

    # tpacf is among the most branch-instrumentation-affected (18.9x T
    # in the paper); nn among the least
    by_name = {r.benchmark: r for r in rows}
    assert by_name["parboil/tpacf(small)"].cells["branches"].kernel_ratio \
        > by_name["rodinia/nn"].cells["branches"].kernel_ratio


@pytest.mark.benchmark(group="table3")
def test_section91_spill_cost_dominates(run_study):
    """Paper Section 9.1: ABI/spill bookkeeping is the dominant share
    of instrumentation overhead (~80% with handler bodies removed)."""
    fraction = run_study(overhead.spill_cost_fraction,
                         "parboil/sgemm(small)", "value")
    print(f"\nABI/spill share of injected instructions: {fraction:.0%}")
    assert fraction > 0.4
