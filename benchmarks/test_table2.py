"""Regenerates Table 2 (value profiling: constant bits and scalar
operations)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.studies import casestudy3
from repro.workloads import TABLE2_BENCHMARKS

QUICK = [
    "parboil/sgemm(small)", "parboil/histo", "rodinia/b+tree",
    "rodinia/nn", "rodinia/lud", "parboil/lbm",
]


@pytest.mark.benchmark(group="table2")
def test_table2_value_profile(run_study):
    benchmarks = TABLE2_BENCHMARKS if full_run() else QUICK
    rows = run_study(casestudy3.run, benchmarks)
    print("\n" + casestudy3.render_table2(rows))

    by_name = {r.benchmark: r.summary for r in rows}
    # paper shape: every app wastes a significant fraction of register
    # bits (the Table 2 dynamic const-bit column spans 16..73%)
    for name, summary in by_name.items():
        assert summary.dynamic_const_bits_pct > 10, name
    # b+tree is the most scalar-rich application (76% in the paper)
    btree = by_name["rodinia/b+tree"].dynamic_scalar_pct
    assert btree >= max(s.dynamic_scalar_pct
                        for n, s in by_name.items()
                        if n != "rodinia/b+tree") - 5
    # meaningful scalar fractions exist across the board
    assert sum(s.dynamic_scalar_pct for s in by_name.values()) \
        / len(by_name) > 10


@pytest.mark.benchmark(group="table2")
def test_section72_bit_pattern_dump(run_study):
    """The Section 7.2 per-instruction dump (R13* <- [000...1])."""
    row = run_study(casestudy3.profile_benchmark, "parboil/sad", True)
    print("\nSection 7.2 dump for the hottest instruction:\n"
          + row.sample_dump)
    assert "<- [" in row.sample_dump
    assert any(c in row.sample_dump for c in "T01")
