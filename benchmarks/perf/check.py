#!/usr/bin/env python
"""CI perf smoke: fail when executor throughput regresses.

Re-measures a small set of workloads and compares against the
committed numbers in ``BENCH_executor.json``.  Raw warp-instrs/sec
do not transfer between machines (CI runners vary wildly), so the
gate normalizes by machine speed: both the optimized executor and the
de-optimized config (``fuse_blocks=False, vector_memory=False``) are
timed in the same window, and the *ratio* is compared against the
committed ``after / calibration`` ratio.  A drop of more than the
tolerance (default 30%) fails the job — that is exactly what
falling off the fused/vectorized fast path looks like (the ratio
collapses to ~1), while absolute machine speed cancels out.

    PYTHONPATH=src python benchmarks/perf/check.py \
        --workloads rodinia/nn rodinia/pathfinder
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run import (  # noqa: E402
    instrumented_key,
    instrumented_scalar_config,
    load_results,
    measure,
    measure_instrumented,
    slow_config,
)

SMOKE_WORKLOADS = ["rodinia/nn", "rodinia/pathfinder"]

#: instrumented smoke: (handler, workload) pairs for the ratio gate
INSTRUMENTED_SMOKE = [
    ("branch_profiler", "rodinia/nn"),
    ("opcode_histogram", "rodinia/nn"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="*", default=SMOKE_WORKLOADS)
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop of the fast/slow "
                             "ratio vs the committed baseline ratio")
    parser.add_argument("--baseline", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "BENCH_executor.json"))
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    reference = slow_config()
    if reference is None:
        print("perf smoke SKIP: this revision has no slow-config knobs")
        return 0
    data = load_results(args.baseline)
    failures = []
    for name in args.workloads:
        entry = data["workloads"].get(name, {})
        committed_after = entry.get("after")
        committed_calibration = entry.get("calibration")
        if not committed_after or not committed_calibration:
            print(f"{name:28s} SKIP (no committed baseline)")
            continue
        committed_ratio = committed_after / committed_calibration
        fast = measure(name, args.repeats)
        slow = measure(name, args.repeats, config=reference)
        ratio = fast / slow
        floor = committed_ratio * (1.0 - args.tolerance)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"{name:28s} fast {fast:10,.0f} wi/s  slow {slow:10,.0f} "
              f"wi/s  ratio {ratio:.2f}x  (committed {committed_ratio:.2f}x,"
              f" floor {floor:.2f}x) {verdict}")
        if ratio < floor:
            failures.append(name)
    if instrumented_scalar_config() is not None:
        # instrumented ratio gate: the warp-wide handler fast lanes vs
        # the per-lane scalar path, normalized the same way (machine
        # speed cancels; falling off the site-plan path collapses the
        # ratio toward 1)
        for handler, name in INSTRUMENTED_SMOKE:
            key = instrumented_key(handler, name)
            entry = data["workloads"].get(key, {})
            committed_after = entry.get("after")
            committed_calibration = entry.get("calibration")
            if not committed_after or not committed_calibration:
                print(f"{key:44s} SKIP (no committed baseline)")
                continue
            committed_ratio = committed_after / committed_calibration
            fast = measure_instrumented(name, handler, args.repeats)
            slow = measure_instrumented(name, handler, args.repeats,
                                        scalar=True)
            ratio = fast / slow
            floor = committed_ratio * (1.0 - args.tolerance)
            verdict = "ok" if ratio >= floor else "REGRESSION"
            print(f"{key:44s} fast {fast:10,.0f} wi/s  slow "
                  f"{slow:10,.0f} wi/s  ratio {ratio:.2f}x  "
                  f"(committed {committed_ratio:.2f}x, floor "
                  f"{floor:.2f}x) {verdict}")
            if ratio < floor:
                failures.append(key)
    if failures:
        print(f"perf smoke FAILED: {', '.join(failures)} fast/slow ratio "
              f"below {(1 - args.tolerance) * 100:.0f}% of baseline")
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
