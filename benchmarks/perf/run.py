#!/usr/bin/env python
"""Whole-workload executor throughput, recorded in BENCH_executor.json.

Measures warp-instructions per second of uninstrumented application
runs (compile excluded, launch + execute included).  Each measurement
is best-of-N over fresh ``Device``/workload instances so allocator and
cache state cannot leak between repetitions.

The script deliberately sticks to API that exists in every revision of
the repo (``make`` / ``ptxas`` / ``Device`` / ``execute``), so the same
file can be pointed at an old checkout via ``PYTHONPATH`` to produce
honest "before" numbers:

    PYTHONPATH=<seed>/src python benchmarks/perf/run.py --label before
    PYTHONPATH=src        python benchmarks/perf/run.py --label after

Results merge into ``BENCH_executor.json``::

    {"schema": "bench_executor/v1",
     "unit": "warp_instrs_per_sec",
     "workloads": {"rodinia/nn": {"before": ..., "after": ...,
                                  "speedup": ...}}}
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

DEFAULT_WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "rodinia/hotspot",
    "parboil/sgemm(small)",
    "parboil/spmv(small)",
]

#: the five stock handlers of the instrumented-run benches
INSTRUMENTED_HANDLERS = [
    "branch_profiler",
    "memory_divergence",
    "opcode_histogram",
    "value_profiler",
    "memtrace",
]

DEFAULT_INSTRUMENTED_WORKLOADS = ["rodinia/nn", "rodinia/pathfinder"]

SCHEMA = "bench_executor/v1"


def slow_config():
    """The de-optimized executor config (per-instruction dispatch,
    scalar per-lane memory) — the in-tree calibration reference the CI
    gate normalizes against.  Returns None on revisions that predate
    the knobs."""
    from repro.sim.executor import SimConfig

    try:
        return SimConfig(fuse_blocks=False, vector_memory=False)
    except TypeError:
        return None


def measure(name: str, repeats: int = 3, config=None) -> float:
    """Best-of-N warp-instructions/second for one workload.

    Only time spent inside ``Device.launch`` counts — host-side input
    generation and result verification are identical in every revision
    and would otherwise dilute the executor's throughput."""
    from repro.backend import ptxas
    from repro.sim import Device
    from repro.workloads import make

    kernel = ptxas(make(name).build_ir())   # compile outside the timer
    best = 0.0
    for _ in range(repeats + 1):            # first rep doubles as warmup
        workload = make(name)
        device = Device(config=config)
        launch_seconds = [0.0]
        real_launch = device.launch

        def timed_launch(*args, **kwargs):
            t0 = time.perf_counter()
            result = real_launch(*args, **kwargs)
            launch_seconds[0] += time.perf_counter() - t0
            return result

        device.launch = timed_launch
        workload.execute(device, kernel)
        rate = workload.last_trace.warp_instructions / launch_seconds[0]
        best = max(best, rate)
    return best


def instrumented_scalar_config():
    """The fully de-vectorized instrumented config: per-instruction
    dispatch, scalar memory, and no fused site plans.  Returns None on
    revisions that predate the knobs."""
    from repro.sim.executor import SimConfig

    try:
        return SimConfig(fuse_blocks=False, vector_memory=False,
                         fuse_handler_calls=False)
    except TypeError:
        return None


def make_profiler(handler: str, device, vectorized: bool = True):
    """Construct one of the five stock profilers on *device*."""
    if handler == "branch_profiler":
        from repro.handlers.branch_profiler import BranchProfiler
        return BranchProfiler(device, vectorized=vectorized)
    if handler == "memory_divergence":
        from repro.handlers.memory_divergence import MemoryDivergenceProfiler
        return MemoryDivergenceProfiler(device, vectorized=vectorized)
    if handler == "opcode_histogram":
        from repro.handlers.opcode_histogram import OpcodeHistogram
        return OpcodeHistogram(device, vectorized=vectorized)
    if handler == "value_profiler":
        from repro.handlers.value_profiler import ValueProfiler
        return ValueProfiler(device, vectorized=vectorized)
    if handler == "memtrace":
        from repro.handlers.memtrace import MemoryTracer
        return MemoryTracer(device, vectorized=vectorized)
    raise KeyError(f"unknown handler {handler!r}")


def measure_instrumented(name: str, handler: str, repeats: int = 3,
                         scalar: bool = False) -> float:
    """Best-of-N warp-instructions/second for one instrumented run.

    ``scalar=True`` measures the full per-lane reference path (no site
    plans, scalar contexts, scalar handler bodies) — the honest
    "before" for the instrumented speedup and the calibration reference
    for the CI ratio gate."""
    from repro.sim import Device
    from repro.workloads import make

    config = instrumented_scalar_config() if scalar else None
    best = 0.0
    for _ in range(repeats + 1):            # first rep doubles as warmup
        workload = make(name)
        device = Device(config=config)
        profiler = make_profiler(handler, device, vectorized=not scalar)
        if scalar:
            profiler.runtime.vectorize_contexts = False
        kernel = profiler.compile(workload.build_ir())
        launch_seconds = [0.0]
        real_launch = device.launch

        def timed_launch(*args, **kwargs):
            t0 = time.perf_counter()
            result = real_launch(*args, **kwargs)
            launch_seconds[0] += time.perf_counter() - t0
            return result

        device.launch = timed_launch
        workload.execute(device, kernel)
        rate = workload.last_trace.warp_instructions / launch_seconds[0]
        if hasattr(profiler, "close"):
            profiler.close()
        best = max(best, rate)
    return best


def measure_sampled(name: str, handler: str, n: int,
                    repeats: int = 3) -> float:
    """Best-of-N warp-instructions/second for an instrumented run
    sampled at rate 1/*n* (every-Nth site firing; rate 1 is the exact
    instrumented path through the same controller).  Returns 0.0 on
    revisions that predate the adaptive runtime.

    Unlike the other benches, the numerator is the *application's own*
    (baseline) warp instructions: the injected instructions executed
    shrink with the sampling rate, so total-instruction throughput
    would fall as sampling gets cheaper.  Application instructions per
    wall second rises as sampling sheds handler overhead — the curve
    the EXPERIMENTS entry plots."""
    from repro.sim import Device
    from repro.workloads import make

    try:
        from repro.sassi.runtime import AdaptiveController, EveryNth
    except ImportError:
        return 0.0
    best = 0.0
    for _ in range(repeats + 1):            # first rep doubles as warmup
        workload = make(name)
        device = Device()
        controller = AdaptiveController(sampling=EveryNth(n))
        controller.install(device)
        profiler = make_profiler(handler, device)
        kernel = profiler.compile(workload.build_ir())
        launch_seconds = [0.0]
        real_launch = device.launch

        def timed_launch(*args, **kwargs):
            t0 = time.perf_counter()
            result = real_launch(*args, **kwargs)
            launch_seconds[0] += time.perf_counter() - t0
            return result

        device.launch = timed_launch
        workload.execute(device, kernel)
        trace = workload.last_trace
        baseline = sum(getattr(stats, "baseline_warp_instructions", 0)
                       for stats in trace.launches)
        numerator = baseline or trace.warp_instructions
        rate = numerator / launch_seconds[0]
        if hasattr(profiler, "close"):
            profiler.close()
        best = max(best, rate)
    return best


def instrumented_key(handler: str, name: str) -> str:
    return f"instrumented/{handler}/{name}"


def sampled_key(handler: str, name: str, n: int) -> str:
    return f"sampled/{handler}/{name}@1/{n}"


#: every-Nth rates swept by ``--sampled-sweep``
SAMPLED_RATES = (1, 4, 16)


def load_results(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
        if data.get("schema") == SCHEMA:
            return data
    return {"schema": SCHEMA, "unit": "warp_instrs_per_sec",
            "workloads": {}}


def merge(data: dict, name: str, label: str, rate: float,
          keep_best: bool = False) -> None:
    entry = data["workloads"].setdefault(name, {})
    if keep_best and entry.get(label):
        rate = max(rate, entry[label])
    entry[label] = round(rate, 1)
    if entry.get("before") and entry.get("after"):
        entry["speedup"] = round(entry["after"] / entry["before"], 2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="*", default=DEFAULT_WORKLOADS)
    parser.add_argument("--label", choices=("before", "after"),
                        default="after")
    parser.add_argument("--keep-best", action="store_true",
                        help="merge by max with any existing number — "
                             "for interleaved before/after sessions "
                             "(alternate the two labels over several "
                             "rounds so both sides sample the same "
                             "machine conditions)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--instrumented", action="store_true",
                        help="also measure the five stock handlers "
                             "(fast vs per-lane scalar path) on the "
                             "instrumented workloads")
    parser.add_argument("--instrumented-workloads", nargs="*",
                        default=DEFAULT_INSTRUMENTED_WORKLOADS)
    parser.add_argument("--handlers", nargs="*",
                        default=INSTRUMENTED_HANDLERS)
    parser.add_argument("--sampled-sweep", action="store_true",
                        help="measure opcode_histogram throughput at "
                             "sampling rates 1/1, 1/4, 1/16 over the "
                             "bench workloads (overhead vs rate)")
    parser.add_argument("--sampled-handler", default="opcode_histogram")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "BENCH_executor.json"))
    args = parser.parse_args(argv)

    data = load_results(args.output)
    if args.instrumented:
        if instrumented_scalar_config() is None:
            print("instrumented benches SKIP: no scalar-config knobs")
        else:
            for handler in args.handlers:
                for name in args.instrumented_workloads:
                    key = instrumented_key(handler, name)
                    fast = measure_instrumented(name, handler,
                                                args.repeats)
                    scalar = measure_instrumented(name, handler,
                                                  args.repeats,
                                                  scalar=True)
                    merge(data, key, "after", fast, args.keep_best)
                    merge(data, key, "before", scalar, args.keep_best)
                    merge(data, key, "calibration", scalar,
                          args.keep_best)
                    entry = data["workloads"][key]
                    print(f"{key:44s} after: {fast:12,.0f} wi/s  "
                          f"(speedup {entry.get('speedup')}x)")
    if args.sampled_sweep:
        handler = args.sampled_handler
        for name in args.workloads:
            exact = None
            for n in SAMPLED_RATES:
                key = sampled_key(handler, name, n)
                rate = measure_sampled(name, handler, n, args.repeats)
                if rate == 0.0:
                    print(f"{key:44s} SKIP: no adaptive runtime")
                    continue
                merge(data, key, "after", rate, args.keep_best)
                if n == 1:
                    exact = rate
                entry = data["workloads"][key]
                if exact:
                    entry["speedup_vs_exact"] = round(rate / exact, 2)
                print(f"{key:44s} after: {rate:12,.0f} wi/s  "
                      f"({entry.get('speedup_vs_exact', 1.0)}x vs exact)")
    for name in args.workloads:
        rate = measure(name, args.repeats)
        merge(data, name, args.label, rate, args.keep_best)
        if args.label == "after" and slow_config() is not None:
            # same-window slow-path rate: the machine-speed calibration
            # reference for benchmarks/perf/check.py's ratio gate
            calibration = measure(name, args.repeats,
                                  config=slow_config())
            merge(data, name, "calibration", calibration, args.keep_best)
        entry = data["workloads"][name]
        speedup = entry.get("speedup")
        extra = f"  (speedup {speedup}x)" if speedup else ""
        print(f"{name:28s} {args.label}: {rate:12,.0f} wi/s{extra}")
    with open(args.output, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
