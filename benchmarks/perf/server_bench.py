"""Serving-layer throughput: jobs/sec vs shard count.

Measures the queue/protocol/scheduling overhead of the profiling
service, separated from workload cost: a swarm of client threads pushes
``bench`` jobs (``spin_ms=0`` for pure overhead, or a fixed spin to
model real work) through servers of increasing shard count.

Usage::

    PYTHONPATH=src python benchmarks/perf/server_bench.py
    PYTHONPATH=src python benchmarks/perf/server_bench.py \
        --jobs 200 --spin-ms 5 --shards 1 2 4
"""

from __future__ import annotations

import argparse
import threading
import time


def drive(shards: int, workers: int, jobs: int, spin_ms: float,
          clients: int, depth: int) -> float:
    from repro.server.client import ServerClient
    from repro.server.service import ServerConfig, start_in_thread

    handle = start_in_thread(ServerConfig(
        shards=shards, workers=workers, queue_depth=depth))
    host, port = handle.address

    # warm every shard's worker pool (serial submissions rotate across
    # shards) so the timed window measures serving, not process startup
    warm = ServerClient(host, port)
    for _ in range(shards * workers):
        warm.submit_and_wait("bench", spin_ms=0, tag="warm",
                             max_retries=10_000)

    done = []
    lock = threading.Lock()

    def worker(thread_index: int, count: int) -> None:
        client = ServerClient(host, port)
        for i in range(count):
            record = client.submit_and_wait(
                "bench", spin_ms=spin_ms,
                tag=f"t{thread_index}-{i}", max_retries=10_000)
            with lock:
                done.append(record["result"]["tag"])

    share, remainder = divmod(jobs, clients)
    threads = [threading.Thread(
        target=worker,
        args=(i, share + (1 if i < remainder else 0)))
        for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    handle.stop()
    assert len(done) == len(set(done)) == jobs, \
        f"lost or duplicated jobs: {len(done)}/{jobs}"
    return jobs / wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=120)
    parser.add_argument("--spin-ms", type=float, default=0.0)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per shard")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--depth", type=int, default=16)
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4])
    args = parser.parse_args(argv)

    print(f"# {args.jobs} bench jobs (spin {args.spin_ms} ms), "
          f"{args.clients} client threads, "
          f"{args.workers} worker(s)/shard, depth {args.depth}")
    print(f"{'shards':>6}  {'jobs/sec':>9}  {'speedup':>7}")
    base = None
    for shards in args.shards:
        rate = drive(shards, args.workers, args.jobs, args.spin_ms,
                     args.clients, args.depth)
        base = base or rate
        print(f"{shards:>6}  {rate:>9.1f}  {rate / base:>6.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
