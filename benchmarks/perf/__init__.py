"""Performance harness for the simulator's hot paths.

Not collected by the tier-1 pytest run (``testpaths = ["tests"]``);
invoke the modules directly:

* ``python benchmarks/perf/micro.py`` — component microbenchmarks
  (dispatch loop, load/store, coalescer, cache).
* ``python benchmarks/perf/run.py --label after`` — whole-workload
  timing, merged into ``BENCH_executor.json``.
* ``python benchmarks/perf/check.py`` — CI smoke: re-measures two small
  workloads and fails when throughput regresses more than the tolerance
  against the committed baseline.
"""
