#!/usr/bin/env python
"""Replay, decode, and indexed-seek throughput, in BENCH_replay.json.

Three measurements on one deterministic multi-launch corpus:

* **decode** — events/second of the vectorized frame decoder alone
  (:func:`decode_frame_columns` over every frame, no analyses), the
  ceiling any replay configuration is chasing.
* **replay** — events/second of the event-at-a-time streaming replay
  versus the serial columnar fast path versus :func:`replay_sharded`
  at 4 shards (frame-partitioned, columnar decode in each worker,
  merged in launch order).  The shard pool comes from
  :func:`task_pool` and is warmed before the timed window, so the
  number records steady-state replay cost, not process startup.
* **seek** — wall time of a last-launch ``trace query`` answered via
  the ``.rpti`` sidecar (O(1) seek to the final frame) versus the same
  query forced down the full-scan path.

Everything is gated as a ratio measured on one machine in one run
(columnar vs streaming, sharded vs streaming, indexed vs scan), so the
CI gate (``--check``) is machine-independent: the committed ratios must
clear the acceptance floors — >= 3x serial columnar replay, >= 2x
sharded replay, >= 10x indexed seek — and a fresh measurement must stay
within tolerance of the committed ones.

Usage::

    PYTHONPATH=src python benchmarks/perf/replay_bench.py
    PYTHONPATH=src python benchmarks/perf/replay_bench.py --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time

SCHEMA = "bench_replay/v2"
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "BENCH_replay.json")

#: corpus shape: enough launches to shard meaningfully, frames fat
#: enough that the columnar decode (not per-task overhead) dominates
CORPUS_LAUNCHES = 32
CORPUS_BODY = 1000

#: the acceptance floors the committed file must clear
COLUMNAR_FLOOR = 3.0
SHARDED_FLOOR = 2.0
SEEK_FLOOR = 10.0

ANALYSES = ["cachesim", "divergence", "memdiv", "opcodes"]


def build_corpus(path: str, launches: int = CORPUS_LAUNCHES,
                 body: int = CORPUS_BODY) -> int:
    """Write a deterministic framed trace: *launches* kernel frames of
    *body* instructions with a load/store every third and a branch
    every eighth.  Returns the event count."""
    from repro.isa.opcodes import Opcode
    from repro.trace.format import (BranchEvent, InstrEvent,
                                    KernelEndEvent, LaunchEvent,
                                    MemEvent, MEM_FLAG_LOAD,
                                    MEM_FLAG_STORE)
    from repro.trace.io import TraceWriter

    opcodes = [op.value for op in Opcode]
    with TraceWriter(path) as writer:
        for n in range(launches):
            writer.write(LaunchEvent(kernel="bench", grid=(4, 1, 1),
                                     block=(128, 1, 1), launch_index=n))
            for i in range(body):
                addr = 0x1000 + 8 * i
                writer.write(InstrEvent(
                    ins_addr=addr, opcode=opcodes[i % len(opcodes)],
                    lanes=32, width=4))
                if i % 3 == 0:
                    writer.write(MemEvent(
                        ins_addr=addr,
                        flags=MEM_FLAG_LOAD if i % 2 else MEM_FLAG_STORE,
                        width=4, active_lanes=32,
                        line_addresses=tuple(
                            0x10000000 + 32 * ((n * body + i + j) % 512)
                            for j in range(4))))
                if i % 8 == 0:
                    writer.write(BranchEvent(
                        ins_addr=addr, active=32, taken=10 + i % 22,
                        not_taken=22 - i % 22))
            writer.write(KernelEndEvent(warp_instructions=body))
    return writer.close().total_events


def measure_decode(path: str, events: int, repeats: int) -> dict:
    """Pure decoder throughput: columns out of every frame, nothing
    consuming them."""
    from repro.trace.index import ensure_index
    from repro.trace.io import TraceReader, decode_frame_columns

    index = ensure_index(path)
    reader = TraceReader(path)
    frames = [data for _, data in reader.frames(index)]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        decoded = 0
        for data in frames:
            frame = decode_frame_columns(data)
            decoded += frame.events
        best = min(best, time.perf_counter() - t0)
    if decoded != events:
        raise SystemExit(f"decode bench lost events: {decoded} decoded "
                         f"vs {events} written")
    return {
        "frames": len(frames),
        "decode_events_per_sec": round(events / best, 1),
    }


def measure_replay(path: str, events: int, shards: int,
                   repeats: int) -> dict:
    """Best-of-N events/second: streaming (events mode) vs the serial
    columnar fast path vs sharded columnar on a warm pool."""
    from repro.campaign.engine import task_pool
    from repro.trace.replay import make_analysis, replay, replay_sharded

    streaming = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        replay(path, [make_analysis(name) for name in ANALYSES],
               columnar=False)
        streaming = min(streaming, time.perf_counter() - t0)

    serial = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        replay(path, [make_analysis(name) for name in ANALYSES])
        serial = min(serial, time.perf_counter() - t0)

    sharded = float("inf")
    with task_pool(jobs=shards) as pool:
        replay_sharded(path, ANALYSES, pool=pool)     # warm the pool
        for _ in range(repeats):
            t0 = time.perf_counter()
            replay_sharded(path, ANALYSES, pool=pool)
            sharded = min(sharded, time.perf_counter() - t0)

    return {
        "shards": shards,
        "streaming_events_per_sec": round(events / streaming, 1),
        "serial_events_per_sec": round(events / serial, 1),
        "sharded_events_per_sec": round(events / sharded, 1),
        "columnar_speedup": round(streaming / serial, 2),
        "sharded_speedup": round(streaming / sharded, 2),
    }


def measure_seek(path: str, repeats: int) -> dict:
    """Last-launch query latency: indexed seek vs forced full scan."""
    from repro.trace.index import index_path_for, read_index
    from repro.trace.query import QueryFilter, run_query

    index = read_index(index_path_for(path))
    last = index.launches - 1
    filt = QueryFilter.parse(launches=f"{last}:")
    # an index that covers nothing forces run_query's scan fallback
    scan_only = dataclasses.replace(
        index, entries=(), stray_events=index.trace_total_events)

    def consume(idx):
        t0 = time.perf_counter()
        hits, stats = run_query(path, filt, index=idx)
        count = sum(1 for _ in hits)
        return time.perf_counter() - t0, count, stats

    indexed = scanned = float("inf")
    for _ in range(repeats):
        elapsed, hits_indexed, stats_indexed = consume(index)
        indexed = min(indexed, elapsed)
    for _ in range(repeats):
        elapsed, hits_scanned, stats_scanned = consume(scan_only)
        scanned = min(scanned, elapsed)
    if hits_indexed != hits_scanned:
        raise SystemExit(f"seek bench disagrees with itself: "
                         f"{hits_indexed} indexed vs "
                         f"{hits_scanned} scanned hits")

    return {
        "query": f"--launches {last}:",
        "hits": hits_indexed,
        "events_scanned_indexed": stats_indexed.events_scanned,
        "events_scanned_scan": stats_scanned.events_scanned,
        "indexed_ms": round(indexed * 1000, 3),
        "scan_ms": round(scanned * 1000, 3),
        "speedup": round(scanned / indexed, 1),
    }


def run_bench(shards: int, repeats: int) -> dict:
    from repro.trace.index import index_path_for

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "corpus.rptrace")
        events = build_corpus(path)
        decode = measure_decode(path, events, repeats)
        results = {
            "schema": SCHEMA,
            "corpus": {
                "launches": CORPUS_LAUNCHES,
                "body_instructions": CORPUS_BODY,
                "events": events,
                "trace_bytes": os.path.getsize(path),
                "index_bytes": os.path.getsize(index_path_for(path)),
            },
            "decode": decode,
            "replay": measure_replay(path, events, shards, repeats),
            "seek": measure_seek(path, repeats),
        }
    return results


#: (section, ratio key, floor) triples the committed file must clear
GATES = [
    ("replay", "columnar_speedup", COLUMNAR_FLOOR),
    ("replay", "sharded_speedup", SHARDED_FLOOR),
    ("seek", "speedup", SEEK_FLOOR),
]


def check(committed_path: str, shards: int, repeats: int,
          tolerance: float) -> int:
    """CI gate: the committed ratios must clear the acceptance floors,
    and a fresh measurement must stay within *tolerance* of them.
    Ratios compare two timings from the same run on the same machine,
    so machine speed cancels out."""
    with open(committed_path) as handle:
        committed = json.load(handle)
    failures = []

    if committed.get("schema") != SCHEMA:
        failures.append(f"committed schema {committed.get('schema')!r} "
                        f"is not {SCHEMA!r} — regenerate the file")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    for section, key, floor in GATES:
        ratio = committed[section][key]
        if ratio < floor:
            failures.append(f"committed {section}.{key} {ratio:.2f}x "
                            f"is below the {floor:.0f}x floor")

    measured = run_bench(shards, repeats)
    for section, key, floor in GATES:
        want = committed[section][key]
        got = measured[section][key]
        limit = max(want * (1.0 - tolerance), floor * (1.0 - tolerance))
        status = "ok" if got >= limit else "FAIL"
        print(f"{section}.{key}: committed {want:.2f}x, "
              f"measured {got:.2f}x, floor {limit:.2f}x ... {status}")
        if got < limit:
            failures.append(
                f"{section}.{key} regressed: measured {got:.2f}x "
                f"vs committed {want:.2f}x (tolerance {tolerance:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="result file (default: repo root)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--check", action="store_true",
                        help="gate a fresh measurement against the "
                             "committed --output file instead of "
                             "rewriting it")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative slack in --check mode")
    args = parser.parse_args(argv)

    if args.check:
        return check(args.output, args.shards, args.repeats,
                     args.tolerance)

    results = run_bench(args.shards, args.repeats)
    decode = results["decode"]
    replay, seek = results["replay"], results["seek"]
    print(f"decode: {decode['decode_events_per_sec']:,.0f} ev/s over "
          f"{decode['frames']} frames (no analyses)")
    print(f"replay: streaming {replay['streaming_events_per_sec']:,.0f} "
          f"ev/s, columnar {replay['serial_events_per_sec']:,.0f} ev/s "
          f"({replay['columnar_speedup']:.2f}x), "
          f"{args.shards} shards "
          f"{replay['sharded_events_per_sec']:,.0f} ev/s "
          f"({replay['sharded_speedup']:.2f}x)")
    print(f"seek:   indexed {seek['indexed_ms']:.2f} ms, "
          f"scan {seek['scan_ms']:.2f} ms ({seek['speedup']:.1f}x), "
          f"{seek['events_scanned_indexed']:,} of "
          f"{seek['events_scanned_scan']:,} events read")
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
