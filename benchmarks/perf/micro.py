#!/usr/bin/env python
"""Component microbenchmarks for the simulator's hot paths.

Four probes, each isolating one layer the warp-vectorization PR
touched:

* ``dispatch``   — straight-line integer kernel: fused-superblock
                   dispatch throughput (warp-instrs/sec).
* ``load_store`` — streaming LDG/STG kernel: vector gather/scatter
                   memory pipeline throughput.
* ``coalesce``   — ``coalesce()`` calls/sec on unit-stride, strided,
                   and scattered warp address patterns.
* ``cache``      — ``Cache.access_lines()`` lines/sec on a mixed
                   hit/miss stream.
* ``replay``     — trace-replay records/sec through every registered
                   :mod:`repro.trace.replay` analysis (the baseline for
                   future replay optimizations).

Run: ``PYTHONPATH=src python benchmarks/perf/micro.py [--json out]``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np


def _run_kernel(text: str, num_regs: int = 16, blocks: int = 8):
    from dataclasses import replace

    from repro.isa import parse_kernel
    from repro.sim import Device, Dim3

    kernel = replace(parse_kernel(text), num_regs=num_regs)
    device = Device()
    t0 = time.perf_counter()
    stats = device.launch(kernel, Dim3(blocks), Dim3(256), [])
    elapsed = time.perf_counter() - t0
    return stats.warp_instructions / elapsed


def bench_dispatch() -> float:
    """Warp-instrs/sec over a long straight-line integer block loop."""
    body = "\n".join("        IADD R2, R2, R3 ;\n"
                     "        LOP.XOR R4, R4, R2 ;\n"
                     "        SHL R5, R4, 0x1 ;\n"
                     "        IADD R6, R5, R3 ;" for _ in range(16))
    text = f""".kernel micro_dispatch
        MOV32I R0, 0x80 ;
        MOV32I R2, 0x1 ;
        MOV32I R3, 0x3 ;
L0:
{body}
        IADD R0, R0, -1 ;
        ISETP.NE.U32.AND P0, PT, R0, RZ, PT ;
   @P0  BRA `(L0) ;
        EXIT ;
"""
    return _run_kernel(text)


def bench_load_store() -> float:
    """Warp-instrs/sec of a streaming global load/store loop."""
    text = """.kernel micro_ldst
        MOV32I R0, 0x400 ;
        MOV32I R2, 0x10000000 ;
        MOV32I R3, 0x0 ;
        S2R R4, SR_LANEID ;
        SHL R4, R4, 0x2 ;
        IADD R2, R2, R4 ;
L0:
        LDG R6, [R2] ;
        IADD R6, R6, 0x1 ;
        STG [R2], R6 ;
        IADD R2, R2, 0x80 ;
        IADD R0, R0, -1 ;
        ISETP.NE.U32.AND P0, PT, R0, RZ, PT ;
   @P0  BRA `(L0) ;
        EXIT ;
"""
    return _run_kernel(text, blocks=2)


def bench_coalesce(iterations: int = 20000) -> float:
    """coalesce() calls/sec across representative address patterns."""
    from repro.sim.coalescer import coalesce

    rng = np.random.default_rng(7)
    base = np.uint64(0x1000_0000)
    patterns = [
        base + np.arange(32, dtype=np.uint64) * np.uint64(4),    # unit
        base + np.arange(32, dtype=np.uint64) * np.uint64(128),  # strided
        base + rng.integers(0, 1 << 16, 32).astype(np.uint64),   # random
    ]
    t0 = time.perf_counter()
    for index in range(iterations):
        coalesce(patterns[index % 3], 4)
    return iterations / (time.perf_counter() - t0)


def bench_cache(iterations: int = 2000) -> float:
    """Cache.access_lines lines/sec on a mixed hit/miss line stream."""
    from repro.sim.cache import kepler_hierarchy
    from repro.sim.coalescer import LINE_BYTES

    cache = kepler_hierarchy()
    rng = np.random.default_rng(11)
    lines = (rng.integers(0, 4096, 64) * LINE_BYTES).astype(np.int64)
    t0 = time.perf_counter()
    for _ in range(iterations):
        cache.access_lines(lines)
    return iterations * len(lines) / (time.perf_counter() - t0)


def bench_replay(iterations: int = 5) -> float:
    """Replay records/sec through all registered trace analyses.

    Captures one small workload trace, then times full streaming
    replay passes (decode + every analysis hook) over it."""
    import os
    import tempfile

    from repro.trace.capture import capture_workload
    from repro.trace.replay import ANALYSES, make_analysis, replay

    fd, path = tempfile.mkstemp(suffix=".rptrace", prefix="bench-replay-")
    os.close(fd)
    try:
        manifest, _, _ = capture_workload("rodinia/nn", path)
        t0 = time.perf_counter()
        for _ in range(iterations):
            replay(path, [make_analysis(name) for name in sorted(ANALYSES)])
        elapsed = time.perf_counter() - t0
        return iterations * manifest.total_events / elapsed
    finally:
        os.unlink(path)


BENCHES = {
    "dispatch": bench_dispatch,
    "load_store": bench_load_store,
    "coalesce": bench_coalesce,
    "cache": bench_cache,
    "replay": bench_replay,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", help="optional path for JSON results")
    parser.add_argument("benches", nargs="*", default=sorted(BENCHES))
    args = parser.parse_args(argv)

    results = {}
    for name in args.benches:
        rate = BENCHES[name]()
        results[name] = round(rate, 1)
        print(f"{name:12s} {rate:14,.0f} ops/s")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
